//! Length-prefixed binary wire frames for [`AthenaMsg`].
//!
//! The vendored `serde` is a trait-only stub (the workspace builds with no
//! registry access), so the codec is hand-rolled. The format is explicit
//! and self-delimiting:
//!
//! ```text
//! frame   := magic("DN") version(u8=1) kind(u8) payload_len(u32 BE) payload
//! payload := variant fields, in declaration order
//! ```
//!
//! Primitives: integers are big-endian; `bool` is one byte (0/1); strings
//! are `u32` length + UTF-8 bytes; a [`Name`] is a `u32` component count +
//! component strings (names travel as *strings*, never as interned
//! `Symbol` ids — the interning table is process-local); `Option<T>` is a
//! one-byte tag + `T`; times are `u64` microseconds.
//!
//! Decoding is total: truncated, oversized, and malformed input returns a
//! typed [`FrameError`], never a panic — the TCP reader feeds this
//! whatever the peer socket produces. Element counts are never trusted
//! for pre-allocation; collections grow only as actual bytes are
//! consumed, so a forged `u32::MAX` count hits [`FrameError::Truncated`]
//! after at most [`MAX_PAYLOAD`] bytes of work.

use dde_core::{AthenaMsg, EvidenceObject, QueryId, RequestKind};
use dde_logic::dnf::{Dnf, Literal, Term};
use dde_logic::label::Label;
use dde_logic::time::{SimDuration, SimTime};
use dde_naming::name::Name;
use dde_netsim::NodeId;

/// Frame header length: magic(2) + version(1) + kind(1) + payload_len(4).
pub const HEADER_LEN: usize = 8;

/// Maximum accepted payload length. Generous for Athena traffic (evidence
/// objects are represented by size, not pixels), tight enough that a
/// malicious length prefix cannot balloon reader memory.
pub const MAX_PAYLOAD: usize = 16 * 1024 * 1024;

const MAGIC: [u8; 2] = *b"DN";
const VERSION: u8 = 1;

const KIND_ANNOUNCE: u8 = 0;
const KIND_REQUEST: u8 = 1;
const KIND_DATA: u8 = 2;
const KIND_LABEL_SHARE: u8 = 3;
// Control plane (never seen by the protocol): health probing.
const KIND_HEALTH_PROBE: u8 = 4;
const KIND_HEALTH_REPORT: u8 = 5;

/// A malformed or unrepresentable wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first two bytes are not the `DN` magic.
    BadMagic {
        /// What arrived instead.
        found: [u8; 2],
    },
    /// Unknown protocol version.
    BadVersion {
        /// What arrived instead of the supported version.
        found: u8,
    },
    /// Unknown message-kind tag.
    UnknownKind {
        /// The unrecognized tag.
        found: u8,
    },
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// Declared payload length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// The buffer ended before the declared content did.
    Truncated {
        /// Byte offset at which more input was needed.
        at: usize,
    },
    /// Bytes remain after the payload was fully decoded.
    Trailing {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A string field is not valid UTF-8.
    BadUtf8 {
        /// Byte offset of the offending string.
        at: usize,
    },
    /// A boolean field held something other than 0 or 1.
    BadBool {
        /// The offending byte.
        found: u8,
    },
    /// An `Option` tag held something other than 0 or 1.
    BadOptionTag {
        /// The offending byte.
        found: u8,
    },
    /// A request-kind tag held something other than fetch/prefetch.
    BadRequestKind {
        /// The offending byte.
        found: u8,
    },
    /// The name components do not form a valid [`Name`].
    BadName {
        /// The naming layer's explanation.
        reason: String,
    },
    /// A decoded term contains contradictory literals (`x ∧ ¬x`).
    ConflictingTerm,
    /// A node id does not fit the wire's `u32` (encode-side only).
    NodeTooLarge {
        /// The unrepresentable node index.
        node: usize,
    },
    /// A control-plane frame (health probe/report) arrived where a
    /// protocol [`AthenaMsg`] was expected. Control frames are only valid
    /// on prober connections; see [`decode_any`].
    Control {
        /// The control frame's kind tag.
        found: u8,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (expected \"DN\")")
            }
            FrameError::BadVersion { found } => {
                write!(f, "unsupported frame version {found} (expected {VERSION})")
            }
            FrameError::UnknownKind { found } => write!(f, "unknown message kind {found}"),
            FrameError::Oversized { len, max } => {
                write!(f, "declared payload of {len} bytes exceeds cap of {max}")
            }
            FrameError::Truncated { at } => write!(f, "frame truncated at byte {at}"),
            FrameError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after payload")
            }
            FrameError::BadUtf8 { at } => write!(f, "invalid utf-8 in string at byte {at}"),
            FrameError::BadBool { found } => write!(f, "invalid bool byte {found}"),
            FrameError::BadOptionTag { found } => write!(f, "invalid option tag {found}"),
            FrameError::BadRequestKind { found } => {
                write!(f, "invalid request-kind tag {found}")
            }
            FrameError::BadName { reason } => write!(f, "invalid name: {reason}"),
            FrameError::ConflictingTerm => write!(f, "term with contradictory literals"),
            FrameError::NodeTooLarge { node } => {
                write!(f, "node id {node} does not fit the wire format")
            }
            FrameError::Control { found } => {
                write!(f, "control frame (kind {found}) on the protocol path")
            }
        }
    }
}

impl std::error::Error for FrameError {}

// ---- Encoding ---------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn boolean(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn str(&mut self, s: &str) {
        // Strings in Athena traffic are short labels/components; a string
        // longer than u32::MAX bytes cannot arise from MAX_PAYLOAD-bounded
        // messages, and the payload cap is enforced at frame assembly.
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn node(&mut self, n: NodeId) -> Result<(), FrameError> {
        let id = u32::try_from(n.0).map_err(|_| FrameError::NodeTooLarge { node: n.0 })?;
        self.u32(id);
        Ok(())
    }
    fn time(&mut self, t: SimTime) {
        self.u64(t.as_micros());
    }
    fn duration(&mut self, d: SimDuration) {
        self.u64(d.as_micros());
    }
    fn label(&mut self, l: &Label) {
        self.str(l.as_str());
    }
    fn name(&mut self, n: &Name) {
        self.u32(n.len() as u32);
        for c in n.component_strs() {
            self.str(c);
        }
    }
    fn opt_node(&mut self, n: Option<NodeId>) -> Result<(), FrameError> {
        match n {
            None => self.u8(0),
            Some(n) => {
                self.u8(1);
                self.node(n)?;
            }
        }
        Ok(())
    }
    fn opt_qid(&mut self, q: Option<QueryId>) {
        match q {
            None => self.u8(0),
            Some(q) => {
                self.u8(1);
                self.u64(q.0);
            }
        }
    }
}

/// Encodes `msg` into one complete wire frame (header + payload).
///
/// Fails only when the message is unrepresentable on the wire: a node id
/// beyond `u32`, or a payload beyond [`MAX_PAYLOAD`].
pub fn encode(msg: &AthenaMsg) -> Result<Vec<u8>, FrameError> {
    let mut e = Enc { buf: Vec::new() };
    let kind = match msg {
        AthenaMsg::QueryAnnounce {
            qid,
            origin,
            expr,
            deadline_at,
        } => {
            e.u64(qid.0);
            e.node(*origin)?;
            e.time(*deadline_at);
            e.u32(expr.terms().len() as u32);
            for term in expr.terms() {
                e.u32(term.len() as u32);
                for lit in term.literals() {
                    e.boolean(lit.is_negated());
                    e.label(lit.label());
                }
            }
            KIND_ANNOUNCE
        }
        AthenaMsg::Request {
            name,
            wanted,
            qid,
            origin,
            kind,
        } => {
            e.u64(qid.0);
            e.node(*origin)?;
            e.u8(match kind {
                RequestKind::Fetch => 0,
                RequestKind::Prefetch => 1,
            });
            e.name(name);
            e.u32(wanted.len() as u32);
            for l in wanted {
                e.label(l);
            }
            KIND_REQUEST
        }
        AthenaMsg::Data {
            object,
            push_to,
            for_query,
        } => {
            e.name(&object.name);
            e.u32(object.covers.len() as u32);
            for l in &object.covers {
                e.label(l);
            }
            e.u64(object.size);
            e.node(object.source)?;
            e.time(object.sampled_at);
            e.duration(object.validity);
            e.opt_node(*push_to)?;
            e.opt_qid(*for_query);
            KIND_DATA
        }
        AthenaMsg::LabelShare {
            label,
            value,
            sampled_at,
            validity,
            annotator,
            based_on,
            for_query,
        } => {
            e.label(label);
            e.boolean(*value);
            e.time(*sampled_at);
            e.duration(*validity);
            e.node(*annotator)?;
            e.name(based_on);
            e.opt_qid(*for_query);
            KIND_LABEL_SHARE
        }
    };
    let payload = e.buf;
    if payload.len() > MAX_PAYLOAD {
        return Err(FrameError::Oversized {
            len: payload.len(),
            max: MAX_PAYLOAD,
        });
    }
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

// ---- Decoding ---------------------------------------------------------

struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        // `checked_add` guards the offset arithmetic against forged
        // lengths near usize::MAX.
        let end = self
            .pos
            .checked_add(n)
            .ok_or(FrameError::Truncated { at: self.pos })?;
        if end > self.buf.len() {
            return Err(FrameError::Truncated { at: self.pos });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn boolean(&mut self) -> Result<bool, FrameError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            found => Err(FrameError::BadBool { found }),
        }
    }
    fn str(&mut self) -> Result<&'a str, FrameError> {
        let len = self.u32()? as usize;
        let at = self.pos;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| FrameError::BadUtf8 { at })
    }
    fn node(&mut self) -> Result<NodeId, FrameError> {
        Ok(NodeId(self.u32()? as usize))
    }
    fn time(&mut self) -> Result<SimTime, FrameError> {
        Ok(SimTime::from_micros(self.u64()?))
    }
    fn duration(&mut self) -> Result<SimDuration, FrameError> {
        Ok(SimDuration::from_micros(self.u64()?))
    }
    fn label(&mut self) -> Result<Label, FrameError> {
        Ok(Label::new(self.str()?))
    }
    fn name(&mut self) -> Result<Name, FrameError> {
        let count = self.u32()? as usize;
        let mut components = Vec::new();
        for _ in 0..count {
            components.push(self.str()?.to_owned());
        }
        Name::from_components(components).map_err(|e| FrameError::BadName {
            reason: e.to_string(),
        })
    }
    fn opt_node(&mut self) -> Result<Option<NodeId>, FrameError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.node()?)),
            found => Err(FrameError::BadOptionTag { found }),
        }
    }
    fn opt_qid(&mut self) -> Result<Option<QueryId>, FrameError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(QueryId(self.u64()?))),
            found => Err(FrameError::BadOptionTag { found }),
        }
    }
}

/// Validates a frame header and returns the declared payload length.
///
/// The TCP reader calls this on the first [`HEADER_LEN`] bytes of each
/// frame to know how much more to read — and to reject garbage before
/// buffering anything.
pub fn payload_len(header: &[u8; HEADER_LEN]) -> Result<usize, FrameError> {
    if header[0..2] != MAGIC {
        return Err(FrameError::BadMagic {
            found: [header[0], header[1]],
        });
    }
    if header[2] != VERSION {
        return Err(FrameError::BadVersion { found: header[2] });
    }
    if header[3] > KIND_HEALTH_REPORT {
        return Err(FrameError::UnknownKind { found: header[3] });
    }
    let len = u32::from_be_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    Ok(len)
}

/// A control-plane message: health probing between the cluster
/// coordinator and a node's transport. Control frames share the `DN`
/// frame format with the protocol but are answered *below* the
/// [`Transport`](crate::transport::Transport) handler seam — the Athena
/// protocol never sees them, so the DES backend (which has no sockets)
/// is untouched by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMsg {
    /// A liveness/readiness poll. `seq` is echoed in the report so the
    /// prober can match replies to requests.
    HealthProbe {
        /// Caller-chosen sequence number, echoed back verbatim.
        seq: u64,
    },
    /// A node's answer to a [`ControlMsg::HealthProbe`].
    HealthReport(crate::health::HealthReport),
}

/// Any decodable wire frame: a protocol message or a control message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireFrame {
    /// An Athena protocol message (kinds 0–3).
    Protocol(AthenaMsg),
    /// A control-plane message (kinds 4–5).
    Control(ControlMsg),
}

/// Encodes a control message into one complete wire frame.
pub fn encode_control(msg: &ControlMsg) -> Result<Vec<u8>, FrameError> {
    let mut e = Enc { buf: Vec::new() };
    let kind = match msg {
        ControlMsg::HealthProbe { seq } => {
            e.u64(*seq);
            KIND_HEALTH_PROBE
        }
        ControlMsg::HealthReport(r) => {
            e.u64(r.seq);
            e.u32(r.node);
            e.boolean(r.ready);
            e.u64(r.heartbeat_us);
            e.u64(r.dispatches);
            e.str(&r.metrics_json);
            KIND_HEALTH_REPORT
        }
    };
    let payload = e.buf;
    if payload.len() > MAX_PAYLOAD {
        return Err(FrameError::Oversized {
            len: payload.len(),
            max: MAX_PAYLOAD,
        });
    }
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Decodes one complete wire frame (header + payload) back into an
/// [`AthenaMsg`]. Total: any malformed input yields a typed error.
/// Control frames (health probe/report) are rejected with
/// [`FrameError::Control`] — the protocol path must never observe them;
/// use [`decode_any`] where both planes are legal.
pub fn decode(frame: &[u8]) -> Result<AthenaMsg, FrameError> {
    match decode_any(frame)? {
        WireFrame::Protocol(msg) => Ok(msg),
        WireFrame::Control(c) => Err(FrameError::Control {
            found: match c {
                ControlMsg::HealthProbe { .. } => KIND_HEALTH_PROBE,
                ControlMsg::HealthReport(_) => KIND_HEALTH_REPORT,
            },
        }),
    }
}

/// Decodes one complete wire frame into either plane. Total: any
/// malformed input yields a typed error.
pub fn decode_any(frame: &[u8]) -> Result<WireFrame, FrameError> {
    if frame.len() < HEADER_LEN {
        return Err(FrameError::Truncated { at: frame.len() });
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&frame[..HEADER_LEN]);
    let len = payload_len(&header)?;
    let payload = &frame[HEADER_LEN..];
    if payload.len() < len {
        return Err(FrameError::Truncated {
            at: HEADER_LEN + payload.len(),
        });
    }
    if payload.len() > len {
        return Err(FrameError::Trailing {
            extra: payload.len() - len,
        });
    }
    let mut c = Cur {
        buf: payload,
        pos: 0,
    };
    let msg = match header[3] {
        KIND_HEALTH_PROBE => {
            let seq = c.u64()?;
            WireFrame::Control(ControlMsg::HealthProbe { seq })
        }
        KIND_HEALTH_REPORT => {
            let seq = c.u64()?;
            let node = c.u32()?;
            let ready = c.boolean()?;
            let heartbeat_us = c.u64()?;
            let dispatches = c.u64()?;
            let metrics_json = c.str()?.to_owned();
            WireFrame::Control(ControlMsg::HealthReport(crate::health::HealthReport {
                seq,
                node,
                ready,
                heartbeat_us,
                dispatches,
                metrics_json,
            }))
        }
        kind => WireFrame::Protocol(match kind {
            KIND_ANNOUNCE => {
                let qid = QueryId(c.u64()?);
                let origin = c.node()?;
                let deadline_at = c.time()?;
                let term_count = c.u32()? as usize;
                let mut terms = Vec::new();
                for _ in 0..term_count {
                    let lit_count = c.u32()? as usize;
                    let mut literals = Vec::new();
                    for _ in 0..lit_count {
                        let negated = c.boolean()?;
                        let label = c.label()?;
                        literals.push(if negated {
                            Literal::negative(label)
                        } else {
                            Literal::positive(label)
                        });
                    }
                    terms.push(
                        Term::try_from_literals(literals).ok_or(FrameError::ConflictingTerm)?,
                    );
                }
                AthenaMsg::QueryAnnounce {
                    qid,
                    origin,
                    expr: Dnf::from_terms(terms),
                    deadline_at,
                }
            }
            KIND_REQUEST => {
                let qid = QueryId(c.u64()?);
                let origin = c.node()?;
                let kind = match c.u8()? {
                    0 => RequestKind::Fetch,
                    1 => RequestKind::Prefetch,
                    found => return Err(FrameError::BadRequestKind { found }),
                };
                let name = c.name()?;
                let want_count = c.u32()? as usize;
                let mut wanted = Vec::new();
                for _ in 0..want_count {
                    wanted.push(c.label()?);
                }
                AthenaMsg::Request {
                    name,
                    wanted,
                    qid,
                    origin,
                    kind,
                }
            }
            KIND_DATA => {
                let name = c.name()?;
                let cover_count = c.u32()? as usize;
                let mut covers = Vec::new();
                for _ in 0..cover_count {
                    covers.push(c.label()?);
                }
                let size = c.u64()?;
                let source = c.node()?;
                let sampled_at = c.time()?;
                let validity = c.duration()?;
                let push_to = c.opt_node()?;
                let for_query = c.opt_qid()?;
                AthenaMsg::Data {
                    object: EvidenceObject {
                        name,
                        covers,
                        size,
                        source,
                        sampled_at,
                        validity,
                    },
                    push_to,
                    for_query,
                }
            }
            KIND_LABEL_SHARE => {
                let label = c.label()?;
                let value = c.boolean()?;
                let sampled_at = c.time()?;
                let validity = c.duration()?;
                let annotator = c.node()?;
                let based_on = c.name()?;
                let for_query = c.opt_qid()?;
                AthenaMsg::LabelShare {
                    label,
                    value,
                    sampled_at,
                    validity,
                    annotator,
                    based_on,
                    for_query,
                }
            }
            // payload_len() has already rejected unknown kinds.
            found => return Err(FrameError::UnknownKind { found }),
        }),
    };
    if c.pos != payload.len() {
        return Err(FrameError::Trailing {
            extra: payload.len() - c.pos,
        });
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> AthenaMsg {
        AthenaMsg::Request {
            name: "/city/cam/n1/x".parse().unwrap(),
            wanted: vec![Label::new("viable/a"), Label::new("viable/b")],
            qid: QueryId(42),
            origin: NodeId(3),
            kind: RequestKind::Fetch,
        }
    }

    #[test]
    fn round_trips_a_request() {
        let msg = sample_request();
        let frame = encode(&msg).unwrap();
        assert_eq!(decode(&frame).unwrap(), msg);
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let frame = encode(&sample_request()).unwrap();
        for cut in 0..frame.len() {
            assert!(
                decode(&frame[..cut]).is_err(),
                "decode accepted a frame cut to {cut} bytes"
            );
        }
    }

    #[test]
    fn rejects_oversized_declared_length() {
        let mut frame = encode(&sample_request()).unwrap();
        let huge = (MAX_PAYLOAD as u32 + 1).to_be_bytes();
        frame[4..8].copy_from_slice(&huge);
        assert!(matches!(decode(&frame), Err(FrameError::Oversized { .. })));
    }

    #[test]
    fn rejects_bad_magic_version_kind() {
        let good = encode(&sample_request()).unwrap();
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(decode(&bad), Err(FrameError::BadMagic { .. })));
        let mut bad = good.clone();
        bad[2] = 9;
        assert!(matches!(decode(&bad), Err(FrameError::BadVersion { .. })));
        let mut bad = good.clone();
        bad[3] = 200;
        assert!(matches!(decode(&bad), Err(FrameError::UnknownKind { .. })));
        let mut bad = good;
        bad.push(0);
        assert!(matches!(decode(&bad), Err(FrameError::Trailing { .. })));
    }

    #[test]
    fn control_frames_round_trip_and_stay_off_the_protocol_path() {
        let probe = ControlMsg::HealthProbe { seq: 7 };
        let frame = encode_control(&probe).unwrap();
        assert_eq!(decode_any(&frame).unwrap(), WireFrame::Control(probe));
        assert!(matches!(
            decode(&frame),
            Err(FrameError::Control { found: 4 })
        ));

        let report = ControlMsg::HealthReport(crate::health::HealthReport {
            seq: 7,
            node: 3,
            ready: true,
            heartbeat_us: 123,
            dispatches: 9,
            metrics_json: r#"{"counters":{}}"#.to_string(),
        });
        let frame = encode_control(&report).unwrap();
        assert_eq!(decode_any(&frame).unwrap(), WireFrame::Control(report));
        assert!(matches!(
            decode(&frame),
            Err(FrameError::Control { found: 5 })
        ));
    }

    #[test]
    fn decode_any_accepts_protocol_frames() {
        let msg = sample_request();
        let frame = encode(&msg).unwrap();
        assert_eq!(decode_any(&frame).unwrap(), WireFrame::Protocol(msg));
    }

    #[test]
    fn truncated_control_frames_are_rejected() {
        let frame = encode_control(&ControlMsg::HealthProbe { seq: 1 }).unwrap();
        for cut in 0..frame.len() {
            assert!(
                decode_any(&frame[..cut]).is_err(),
                "decode_any accepted a control frame cut to {cut} bytes"
            );
        }
    }

    #[test]
    fn forged_count_cannot_balloon_memory() {
        // A request whose wanted-count claims u32::MAX labels but whose
        // payload ends immediately must fail fast on truncation.
        let mut frame = encode(&AthenaMsg::Request {
            name: "/a/b".parse().unwrap(),
            wanted: vec![],
            qid: QueryId(1),
            origin: NodeId(0),
            kind: RequestKind::Fetch,
        })
        .unwrap();
        let n = frame.len();
        frame[n - 4..].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(decode(&frame), Err(FrameError::Truncated { .. })));
    }
}

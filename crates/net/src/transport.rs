//! The [`Transport`] trait — the injectable link-layer seam.
//!
//! A transport is one node's endpoint: it knows who the node is, who its
//! neighbors are, what time it is, and how to move [`AthenaMsg`]s to
//! adjacent nodes. The Athena protocol stays hop-by-hop above this seam
//! exactly as it is inside the simulator — multi-hop forwarding is the
//! protocol's job, so `send_to` refuses non-neighbors with a typed error
//! rather than routing around the protocol.
//!
//! The entire surface is panic-free (dde-lint R4): every failure mode is
//! a [`NetError`] the host can count and survive.

use crate::error::NetError;
use dde_core::AthenaMsg;
use dde_logic::time::SimTime;
use dde_netsim::NodeId;

/// Callback invoked by the transport for each inbound message, with the
/// sending neighbor's identity. Called from transport-owned threads, so
/// it must be `Send`; the usual implementation forwards into an `mpsc`
/// channel drained by the node's host loop.
pub type MessageHandler = Box<dyn FnMut(NodeId, AthenaMsg) + Send>;

/// One node's link-layer endpoint.
///
/// Implementations: [`crate::TcpTransport`] (real sockets, threaded
/// readers). Inside the DES the same seam exists as
/// [`dde_netsim::Context`] / [`dde_netsim::Command`] — the simulator *is*
/// the transport there, which is what keeps [`crate::DesTransport`] runs
/// byte-identical to the pre-extraction engine.
pub trait Transport: Send {
    /// The node this endpoint belongs to.
    fn local_node(&self) -> NodeId;

    /// This node's neighbors, in ascending id order.
    fn neighbors(&self) -> Vec<NodeId>;

    /// The current *protocol* time at this node. Simulated time in the
    /// DES; a scaled virtual clock over the TCP backend. Never the raw
    /// wall clock — protocol timestamps must stay in simulation units so
    /// deadlines and validity windows mean the same thing on both
    /// backends.
    fn local_now(&self) -> SimTime;

    /// Sends `msg` to the adjacent node `to`.
    ///
    /// Typed failures, no panics: [`NetError::NotNeighbor`] for a routing
    /// race, [`NetError::PeerUnavailable`] / [`NetError::Io`] for link
    /// trouble, [`NetError::Shutdown`] after [`Transport::shutdown`].
    fn send_to(&self, to: NodeId, msg: &AthenaMsg) -> Result<(), NetError>;

    /// Sends `msg` to every neighbor; returns how many sends succeeded.
    ///
    /// The default implementation loops over [`Transport::neighbors`] and
    /// keeps going past per-peer failures (a flooded announce should
    /// reach the neighbors that *are* reachable); it fails only if the
    /// transport is shut down entirely.
    fn broadcast(&self, msg: &AthenaMsg) -> Result<usize, NetError> {
        let mut delivered = 0;
        for nb in self.neighbors() {
            match self.send_to(nb, msg) {
                Ok(()) => delivered += 1,
                Err(NetError::Shutdown) => return Err(NetError::Shutdown),
                Err(_) => {}
            }
        }
        Ok(delivered)
    }

    /// Registers the inbound-message callback. Messages that arrive
    /// before a handler is registered are buffered and replayed to the
    /// new handler in arrival order, so registration is race-free.
    fn set_message_handler(&mut self, handler: MessageHandler);

    /// Stops all transport activity: closes connections, unblocks and
    /// joins reader threads. Idempotent; sends after shutdown return
    /// [`NetError::Shutdown`].
    fn shutdown(&mut self) -> Result<(), NetError>;
}

//! The Manhattan road grid of the evaluation scenario (§VII).
//!
//! "We consider a Manhattan-like map, where road segments have a grid-like
//! layout. We divide the experimental region into a Manhattan grid given by
//! an 8 × 8 road segment network." Intersections form a lattice; a road
//! *segment* joins two adjacent intersections.

use core::fmt;
use dde_logic::label::Label;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::{BTreeMap, BinaryHeap};

/// An intersection on the grid, by (row, col).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Intersection {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
}

impl fmt::Display for Intersection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// A road segment between two adjacent intersections, stored with endpoints
/// in normalized (sorted) order so each physical segment has one identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Segment {
    /// The lexicographically smaller endpoint.
    pub a: Intersection,
    /// The lexicographically larger endpoint.
    pub b: Intersection,
}

impl Segment {
    /// Creates a normalized segment.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints are not grid-adjacent.
    pub fn new(x: Intersection, y: Intersection) -> Segment {
        let adjacent = (x.row == y.row && x.col.abs_diff(y.col) == 1)
            || (x.col == y.col && x.row.abs_diff(y.row) == 1);
        assert!(adjacent, "segment endpoints must be adjacent: {x} {y}");
        if x <= y {
            Segment { a: x, b: y }
        } else {
            Segment { a: y, b: x }
        }
    }

    /// The viability label for this segment, e.g. `viable/3_4-3_5`.
    pub fn label(&self) -> Label {
        Label::new(format!(
            "viable/{}_{}-{}_{}",
            self.a.row, self.a.col, self.b.row, self.b.col
        ))
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.a, self.b)
    }
}

/// A route: a sequence of adjacent intersections.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Route {
    intersections: Vec<Intersection>,
}

impl Route {
    /// Builds a route from a walk of intersections.
    ///
    /// # Panics
    ///
    /// Panics if consecutive intersections are not adjacent or fewer than 2
    /// intersections are supplied.
    pub fn new(intersections: Vec<Intersection>) -> Route {
        assert!(intersections.len() >= 2, "a route needs at least 2 points");
        for w in intersections.windows(2) {
            let _ = Segment::new(w[0], w[1]); // validates adjacency
        }
        Route { intersections }
    }

    /// The intersections along the route.
    pub fn intersections(&self) -> &[Intersection] {
        &self.intersections
    }

    /// The route's segments, in travel order.
    pub fn segments(&self) -> Vec<Segment> {
        self.intersections
            .windows(2)
            .map(|w| Segment::new(w[0], w[1]))
            .collect()
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.intersections.len() - 1
    }

    /// Routes always have at least one segment.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Origin intersection.
    pub fn origin(&self) -> Intersection {
        self.intersections[0]
    }

    /// Destination intersection.
    pub fn destination(&self) -> Intersection {
        *self.intersections.last().expect("non-empty") // lint: allow(panic) — Route::new rejects routes with < 2 intersections
    }
}

/// An `rows × cols` lattice of intersections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoadGrid {
    /// Intersection rows.
    pub rows: usize,
    /// Intersection columns.
    pub cols: usize,
}

impl RoadGrid {
    /// Creates a grid.
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are at least 2 (otherwise there are no
    /// segments).
    pub fn new(rows: usize, cols: usize) -> RoadGrid {
        assert!(
            rows >= 2 && cols >= 2,
            "grid needs at least 2×2 intersections"
        );
        RoadGrid { rows, cols }
    }

    /// The paper's 8 × 8 configuration.
    pub fn paper() -> RoadGrid {
        RoadGrid::new(8, 8)
    }

    /// All intersections, row-major.
    pub fn intersections(&self) -> impl Iterator<Item = Intersection> + '_ {
        let cols = self.cols;
        (0..self.rows).flat_map(move |row| (0..cols).map(move |col| Intersection { row, col }))
    }

    /// All segments (horizontal then vertical), in normalized order.
    pub fn segments(&self) -> Vec<Segment> {
        let mut out = Vec::new();
        for row in 0..self.rows {
            for col in 0..self.cols {
                let here = Intersection { row, col };
                if col + 1 < self.cols {
                    out.push(Segment::new(here, Intersection { row, col: col + 1 }));
                }
                if row + 1 < self.rows {
                    out.push(Segment::new(here, Intersection { row: row + 1, col }));
                }
            }
        }
        out
    }

    /// Neighbors of an intersection.
    pub fn neighbors(&self, i: Intersection) -> Vec<Intersection> {
        let mut out = Vec::with_capacity(4);
        if i.row > 0 {
            out.push(Intersection {
                row: i.row - 1,
                col: i.col,
            });
        }
        if i.row + 1 < self.rows {
            out.push(Intersection {
                row: i.row + 1,
                col: i.col,
            });
        }
        if i.col > 0 {
            out.push(Intersection {
                row: i.row,
                col: i.col - 1,
            });
        }
        if i.col + 1 < self.cols {
            out.push(Intersection {
                row: i.row,
                col: i.col + 1,
            });
        }
        out
    }

    /// Segments incident to an intersection — a camera at `i` can examine
    /// exactly these ("each node's data can be used to examine the node's
    /// immediate surrounding segments", §VII).
    pub fn incident_segments(&self, i: Intersection) -> Vec<Segment> {
        self.neighbors(i)
            .into_iter()
            .map(|n| Segment::new(i, n))
            .collect()
    }

    /// Manhattan distance between intersections.
    pub fn distance(&self, a: Intersection, b: Intersection) -> usize {
        a.row.abs_diff(b.row) + a.col.abs_diff(b.col)
    }

    /// Whether the intersection lies on this grid.
    pub fn contains(&self, i: Intersection) -> bool {
        i.row < self.rows && i.col < self.cols
    }

    /// Generates up to `k` *distinct* candidate routes from `origin` to
    /// `dest` by shortest-path search under randomly perturbed edge weights
    /// (each attempt draws fresh weights from `rng`). This mirrors the
    /// paper's "five candidate routes … computed and randomly selected from
    /// the underlying road segment network".
    ///
    /// # Panics
    ///
    /// Panics if `origin == dest` or either endpoint is off-grid.
    pub fn candidate_routes<R: Rng>(
        &self,
        origin: Intersection,
        dest: Intersection,
        k: usize,
        rng: &mut R,
    ) -> Vec<Route> {
        assert!(
            self.contains(origin) && self.contains(dest),
            "off-grid endpoint"
        );
        assert_ne!(origin, dest, "origin and destination must differ");
        let mut routes: Vec<Route> = Vec::new();
        let attempts = k * 6;
        for _ in 0..attempts {
            if routes.len() >= k {
                break;
            }
            let route = self.random_weight_shortest_path(origin, dest, rng);
            if !routes.contains(&route) {
                routes.push(route);
            }
        }
        routes
    }

    fn random_weight_shortest_path<R: Rng>(
        &self,
        origin: Intersection,
        dest: Intersection,
        rng: &mut R,
    ) -> Route {
        // Dijkstra with random edge weights in [1, 100].
        let mut weights: BTreeMap<(Intersection, Intersection), u64> = BTreeMap::new();
        for seg in self.segments() {
            let w = rng.gen_range(1..=100u64);
            weights.insert((seg.a, seg.b), w);
            weights.insert((seg.b, seg.a), w);
        }
        let mut dist: BTreeMap<Intersection, u64> = BTreeMap::new();
        let mut prev: BTreeMap<Intersection, Intersection> = BTreeMap::new();
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, Intersection)>> = BinaryHeap::new();
        dist.insert(origin, 0);
        heap.push(std::cmp::Reverse((0, origin)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if u == dest {
                break;
            }
            if dist.get(&u).copied().unwrap_or(u64::MAX) < d {
                continue;
            }
            let mut nbrs = self.neighbors(u);
            nbrs.shuffle(rng);
            for v in nbrs {
                let w = weights[&(u, v)];
                let nd = d + w;
                if nd < dist.get(&v).copied().unwrap_or(u64::MAX) {
                    dist.insert(v, nd);
                    prev.insert(v, u);
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        // Reconstruct.
        let mut path = vec![dest];
        let mut cur = dest;
        while cur != origin {
            cur = prev[&cur];
            path.push(cur);
        }
        path.reverse();
        Route::new(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn i(row: usize, col: usize) -> Intersection {
        Intersection { row, col }
    }

    #[test]
    fn paper_grid_counts() {
        let g = RoadGrid::paper();
        assert_eq!(g.intersections().count(), 64);
        // 8×7 horizontal + 7×8 vertical = 112 segments.
        assert_eq!(g.segments().len(), 112);
    }

    #[test]
    fn segment_normalization_and_label() {
        let s1 = Segment::new(i(1, 2), i(1, 3));
        let s2 = Segment::new(i(1, 3), i(1, 2));
        assert_eq!(s1, s2);
        assert_eq!(s1.label().as_str(), "viable/1_2-1_3");
        assert_eq!(s1.to_string(), "(1,2)-(1,3)");
    }

    #[test]
    #[should_panic(expected = "adjacent")]
    fn diagonal_segment_rejected() {
        let _ = Segment::new(i(0, 0), i(1, 1));
    }

    #[test]
    fn neighbors_respect_boundaries() {
        let g = RoadGrid::new(3, 3);
        assert_eq!(g.neighbors(i(0, 0)).len(), 2);
        assert_eq!(g.neighbors(i(1, 1)).len(), 4);
        assert_eq!(g.neighbors(i(0, 1)).len(), 3);
        assert_eq!(g.incident_segments(i(1, 1)).len(), 4);
    }

    #[test]
    fn route_segments_and_endpoints() {
        let r = Route::new(vec![i(0, 0), i(0, 1), i(1, 1)]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.origin(), i(0, 0));
        assert_eq!(r.destination(), i(1, 1));
        let segs = r.segments();
        assert_eq!(segs[0], Segment::new(i(0, 0), i(0, 1)));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn trivial_route_rejected() {
        let _ = Route::new(vec![i(0, 0)]);
    }

    #[test]
    fn candidate_routes_distinct_and_valid() {
        let g = RoadGrid::paper();
        let mut rng = SmallRng::seed_from_u64(7);
        let routes = g.candidate_routes(i(0, 0), i(7, 7), 5, &mut rng);
        assert_eq!(routes.len(), 5);
        for r in &routes {
            assert_eq!(r.origin(), i(0, 0));
            assert_eq!(r.destination(), i(7, 7));
            assert!(r.len() >= 14); // at least the Manhattan distance
        }
        // All distinct.
        for (x, a) in routes.iter().enumerate() {
            for b in routes.iter().skip(x + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn candidate_routes_deterministic_per_seed() {
        let g = RoadGrid::new(4, 4);
        let r1 = g.candidate_routes(i(0, 0), i(3, 3), 3, &mut SmallRng::seed_from_u64(9));
        let r2 = g.candidate_routes(i(0, 0), i(3, 3), 3, &mut SmallRng::seed_from_u64(9));
        assert_eq!(r1, r2);
    }

    #[test]
    fn adjacent_endpoints_one_segment_route() {
        let g = RoadGrid::new(2, 2);
        let mut rng = SmallRng::seed_from_u64(1);
        let routes = g.candidate_routes(i(0, 0), i(0, 1), 5, &mut rng);
        assert!(!routes.is_empty());
        assert!(routes.iter().any(|r| r.len() == 1));
    }

    proptest! {
        /// Every generated route is a valid simple-ish walk from origin to
        /// destination whose segments all lie on the grid.
        #[test]
        fn routes_are_valid_walks(seed in 0u64..30) {
            let g = RoadGrid::new(5, 5);
            let mut rng = SmallRng::seed_from_u64(seed);
            let routes = g.candidate_routes(i(0, 0), i(4, 4), 4, &mut rng);
            prop_assert!(!routes.is_empty());
            let all_segments = g.segments();
            for r in &routes {
                for s in r.segments() {
                    prop_assert!(all_segments.contains(&s));
                }
                // Dijkstra paths never repeat an intersection.
                let mut seen = r.intersections().to_vec();
                seen.sort();
                seen.dedup();
                prop_assert_eq!(seen.len(), r.intersections().len());
            }
        }
    }
}

//! Ground-truth world state with fast/slow dynamics (§VII).
//!
//! "Data objects belong to two different categories, namely slow changing
//! and fast changing. The ratio of fast changing objects to the total number
//! of objects is a quantification of the level of environmental dynamics."
//!
//! Each label's true value is piecewise-constant over *epochs* whose length
//! equals the label's validity interval — exactly the semantics of a
//! validity interval: within one epoch a fresh measurement stays accurate.
//! The value in each epoch is a deterministic hash of `(seed, label, epoch)`,
//! so the world needs no storage and every run is reproducible.

use core::fmt;
use dde_logic::label::Label;
use dde_logic::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// Dynamics class of a measured quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DynamicsClass {
    /// Long validity interval (e.g. structural road damage).
    Slow,
    /// Short validity interval (e.g. flooding, moving obstacles).
    Fast,
}

impl fmt::Display for DynamicsClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DynamicsClass::Slow => "slow",
            DynamicsClass::Fast => "fast",
        })
    }
}

/// Per-label dynamics: how often the underlying state changes and how likely
/// it is to be "true" (viable) in any epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelDynamics {
    /// The dynamics class (determines the epoch length below).
    pub class: DynamicsClass,
    /// Epoch length = validity interval of measurements of this label.
    pub validity: SimDuration,
    /// Probability that the label is true in any given epoch.
    pub prob_true: f64,
}

/// The deterministic ground-truth world.
///
/// # Examples
///
/// ```
/// use dde_workload::world::{DynamicsClass, WorldModel};
/// use dde_logic::prelude::*;
///
/// let mut world = WorldModel::new(42);
/// world.register(Label::new("viable/x"), DynamicsClass::Fast,
///                SimDuration::from_secs(10), 0.8);
/// let v0 = world.value(&Label::new("viable/x"), SimTime::ZERO);
/// // Within one epoch the value is constant:
/// assert_eq!(v0, world.value(&Label::new("viable/x"), SimTime::from_secs(9)));
/// ```
#[derive(Debug, Clone)]
pub struct WorldModel {
    seed: u64,
    labels: BTreeMap<Label, LabelDynamics>,
}

impl WorldModel {
    /// Creates an empty world driven by `seed`.
    pub fn new(seed: u64) -> WorldModel {
        WorldModel {
            seed,
            labels: BTreeMap::new(),
        }
    }

    /// Registers a label's dynamics.
    ///
    /// # Panics
    ///
    /// Panics if `prob_true` is outside `[0, 1]` or `validity` is zero.
    pub fn register(
        &mut self,
        label: Label,
        class: DynamicsClass,
        validity: SimDuration,
        prob_true: f64,
    ) {
        assert!((0.0..=1.0).contains(&prob_true), "prob_true out of range");
        assert!(validity > SimDuration::ZERO, "validity must be positive");
        self.labels.insert(
            label,
            LabelDynamics {
                class,
                validity,
                prob_true,
            },
        );
    }

    /// The dynamics registered for `label`.
    pub fn dynamics(&self, label: &Label) -> Option<&LabelDynamics> {
        self.labels.get(label)
    }

    /// Number of registered labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether any labels are registered.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates over registered labels and their dynamics.
    pub fn iter(&self) -> impl Iterator<Item = (&Label, &LabelDynamics)> {
        self.labels.iter()
    }

    /// The epoch index of `label` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `label` was never registered.
    pub fn epoch(&self, label: &Label, time: SimTime) -> u64 {
        let dyn_ = self
            .labels
            .get(label)
            .unwrap_or_else(|| panic!("label not registered: {label}"));
        time.as_micros() / dyn_.validity.as_micros().max(1)
    }

    /// The ground-truth value of `label` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `label` was never registered.
    pub fn value(&self, label: &Label, time: SimTime) -> bool {
        let dyn_ = self
            .labels
            .get(label)
            .unwrap_or_else(|| panic!("label not registered: {label}"));
        let epoch = self.epoch(label, time);
        let h = stable_hash(self.seed, label.as_str(), epoch);
        // Map to [0,1) and compare against prob_true.
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit < dyn_.prob_true
    }

    /// The instant `label`'s current epoch (at `time`) ends — when a fresh
    /// measurement taken at `time` stops being valid.
    pub fn epoch_end(&self, label: &Label, time: SimTime) -> SimTime {
        let dyn_ = self
            .labels
            .get(label)
            .unwrap_or_else(|| panic!("label not registered: {label}"));
        let epoch = self.epoch(label, time);
        SimTime::from_micros((epoch + 1).saturating_mul(dyn_.validity.as_micros()))
    }
}

fn stable_hash(seed: u64, label: &str, epoch: u64) -> u64 {
    // FxHash-style mix; std's SipHasher with fixed keys would also do, but
    // DefaultHasher's keys are randomized per process, so roll a simple
    // explicit mixer for cross-run stability.
    let mut h = Splitmix(seed ^ 0x9e37_79b9_7f4a_7c15);
    label.hash(&mut h);
    epoch.hash(&mut h);
    h.finish()
}

struct Splitmix(u64);

impl Hasher for Splitmix {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = self
                .0
                .wrapping_add(b as u64)
                .wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            self.0 = z ^ (z >> 31);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn world_with(label: &str, validity_s: u64, p: f64) -> (WorldModel, Label) {
        let mut w = WorldModel::new(1234);
        let l = Label::new(label);
        w.register(
            l.clone(),
            DynamicsClass::Fast,
            SimDuration::from_secs(validity_s),
            p,
        );
        (w, l)
    }

    #[test]
    fn constant_within_epoch() {
        let (w, l) = world_with("x", 10, 0.5);
        let v = w.value(&l, SimTime::ZERO);
        for s in 0..10 {
            assert_eq!(w.value(&l, SimTime::from_secs(s)), v);
        }
    }

    #[test]
    fn epoch_boundaries() {
        let (w, l) = world_with("x", 10, 0.5);
        assert_eq!(w.epoch(&l, SimTime::from_secs(9)), 0);
        assert_eq!(w.epoch(&l, SimTime::from_secs(10)), 1);
        assert_eq!(
            w.epoch_end(&l, SimTime::from_secs(3)),
            SimTime::from_secs(10)
        );
        assert_eq!(
            w.epoch_end(&l, SimTime::from_secs(10)),
            SimTime::from_secs(20)
        );
    }

    #[test]
    fn extreme_probabilities() {
        let (w, l) = world_with("always", 5, 1.0);
        for s in [0, 7, 100, 12345] {
            assert!(w.value(&l, SimTime::from_secs(s)));
        }
        let (w, l) = world_with("never", 5, 0.0);
        for s in [0, 7, 100] {
            assert!(!w.value(&l, SimTime::from_secs(s)));
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let (w1, l) = world_with("x", 10, 0.5);
        let (w2, _) = world_with("x", 10, 0.5);
        for s in 0..100 {
            assert_eq!(
                w1.value(&l, SimTime::from_secs(s)),
                w2.value(&l, SimTime::from_secs(s))
            );
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let l = Label::new("x");
        let mut w1 = WorldModel::new(1);
        let mut w2 = WorldModel::new(2);
        for w in [&mut w1, &mut w2] {
            w.register(
                l.clone(),
                DynamicsClass::Fast,
                SimDuration::from_secs(1),
                0.5,
            );
        }
        let differs = (0..200)
            .any(|s| w1.value(&l, SimTime::from_secs(s)) != w2.value(&l, SimTime::from_secs(s)));
        assert!(differs);
    }

    #[test]
    fn empirical_probability_tracks_target() {
        let (w, l) = world_with("x", 1, 0.8);
        let trues = (0..2000)
            .filter(|&s| w.value(&l, SimTime::from_secs(s)))
            .count();
        let frac = trues as f64 / 2000.0;
        assert!((frac - 0.8).abs() < 0.05, "empirical {frac} vs target 0.8");
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_label_panics() {
        let w = WorldModel::new(0);
        let _ = w.value(&Label::new("ghost"), SimTime::ZERO);
    }

    #[test]
    fn registry_introspection() {
        let (mut w, _) = world_with("x", 10, 0.5);
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
        w.register(
            Label::new("y"),
            DynamicsClass::Slow,
            SimDuration::from_secs(100),
            0.9,
        );
        assert_eq!(w.iter().count(), 2);
        let d = w.dynamics(&Label::new("y")).unwrap();
        assert_eq!(d.class, DynamicsClass::Slow);
    }

    proptest! {
        /// Values only change at epoch boundaries.
        #[test]
        fn changes_only_at_boundaries(validity_s in 1u64..30, t in 0u64..10_000) {
            let (w, l) = world_with("x", validity_s, 0.5);
            let t1 = SimTime::from_secs(t);
            let t2 = SimTime::from_secs(t + 1);
            if w.epoch(&l, t1) == w.epoch(&l, t2) {
                prop_assert_eq!(w.value(&l, t1), w.value(&l, t2));
            }
        }
    }
}

//! End-to-end scenario assembly for the §VII evaluation.
//!
//! Builds everything one experiment run needs: the Athena node topology, the
//! ground-truth world, the object catalog, and the decision queries —
//! deterministically from a seed.

use crate::catalog::{Catalog, ObjectSpec};
use crate::grid::{Intersection, RoadGrid};
use crate::world::{DynamicsClass, WorldModel};
use dde_logic::dnf::{Dnf, Term};
use dde_logic::time::{SimDuration, SimTime};
use dde_naming::name::Name;
use dde_netsim::fault::FaultSchedule;
use dde_netsim::topology::{LinkSpec, NodeId, Topology};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A generated decision query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryInstance {
    /// Unique id across the scenario.
    pub id: u64,
    /// The node that issues the query.
    pub origin: NodeId,
    /// The DNF decision expression (OR of candidate routes).
    pub expr: Dnf,
    /// Relative decision deadline.
    pub deadline: SimDuration,
    /// Absolute issue time.
    pub issue_at: SimTime,
}

/// Parameters of a scenario; defaults reproduce the paper's configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Grid rows (intersections).
    pub grid_rows: usize,
    /// Grid columns (intersections).
    pub grid_cols: usize,
    /// Number of Athena nodes (~30 in the paper).
    pub node_count: usize,
    /// Concurrent queries per node (3 in the paper).
    pub queries_per_node: usize,
    /// Candidate routes per query (5 in the paper).
    pub routes_per_query: usize,
    /// Fraction of segments whose state changes fast (the x-axis of Fig. 2).
    pub fast_ratio: f64,
    /// Smallest object size in bytes (100 KB in the paper).
    pub min_object_bytes: u64,
    /// Largest object size in bytes (~1 MB in the paper).
    pub max_object_bytes: u64,
    /// Validity interval of slow-changing measurements.
    pub slow_validity: SimDuration,
    /// Validity interval of fast-changing measurements.
    pub fast_validity: SimDuration,
    /// Decision deadline for every query.
    pub deadline: SimDuration,
    /// Node-to-node link bandwidth (1 Mbps in the paper).
    pub link_bandwidth_bps: u64,
    /// Nodes within this Manhattan distance get a direct link.
    pub radio_range: usize,
    /// Probability a segment is viable in any epoch.
    pub prob_viable: f64,
    /// Whether nodes additionally advertise a panorama object covering all
    /// their incident segments at once (gives the source-selection problem
    /// its multi-coverage structure).
    pub panoramas: bool,
    /// Spacing between consecutive query issue times at one node.
    pub query_stagger: SimDuration,
    /// Added to every query's issue time (gives anticipation leads room).
    pub issue_offset: SimDuration,
    /// Guarantee at least this many *distinct source nodes* can provide
    /// evidence for every segment (extra tele cameras are added from the
    /// nearest nodes). Needed for ≥3-way corroboration (§IV-B).
    pub min_sources_per_segment: usize,
    /// Node churn: each node independently crashes once with this
    /// probability at a uniform instant before the last deadline, then
    /// recovers after [`ScenarioConfig::churn_downtime`]. `0.0` disables
    /// fault injection entirely (the built schedule is empty).
    pub churn_rate: f64,
    /// How long a churned node stays down before recovering.
    pub churn_downtime: SimDuration,
    /// Master seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            grid_rows: 8,
            grid_cols: 8,
            node_count: 30,
            queries_per_node: 3,
            routes_per_query: 5,
            fast_ratio: 0.4,
            min_object_bytes: 100_000,
            max_object_bytes: 1_000_000,
            slow_validity: SimDuration::from_secs(600),
            fast_validity: SimDuration::from_secs(60),
            deadline: SimDuration::from_secs(180),
            link_bandwidth_bps: 1_000_000,
            radio_range: 4,
            prob_viable: 0.8,
            panoramas: true,
            query_stagger: SimDuration::from_millis(500),
            issue_offset: SimDuration::ZERO,
            min_sources_per_segment: 1,
            churn_rate: 0.0,
            churn_downtime: SimDuration::from_secs(60),
            seed: 1,
        }
    }
}

impl ScenarioConfig {
    /// A scaled-down configuration for fast tests: 4×4 grid, 8 nodes, one
    /// query per node.
    pub fn small() -> ScenarioConfig {
        ScenarioConfig {
            grid_rows: 4,
            grid_cols: 4,
            node_count: 8,
            queries_per_node: 1,
            routes_per_query: 3,
            ..ScenarioConfig::default()
        }
    }

    /// An overload band for admission-control experiments: the small grid,
    /// but every node issues a burst of near-simultaneous queries, so the
    /// predicted retrieval work outruns what the 1 Mbps links can carry
    /// before the deadlines. Adaptive runs should shed or defer part of
    /// the burst; static runs saturate and miss.
    pub fn overload() -> ScenarioConfig {
        ScenarioConfig {
            queries_per_node: 6,
            query_stagger: SimDuration::from_millis(20),
            deadline: SimDuration::from_secs(45),
            ..ScenarioConfig::small()
        }
    }

    /// A city-scale configuration for throughput sweeps: 12×12 grid, 60
    /// nodes, 120 queries. Roughly 4× the default event volume — big
    /// enough for parallel speedup measurements to mean something, small
    /// enough to finish in seconds in release builds.
    pub fn city() -> ScenarioConfig {
        ScenarioConfig {
            grid_rows: 12,
            grid_cols: 12,
            node_count: 60,
            queries_per_node: 2,
            routes_per_query: 4,
            radio_range: 5,
            ..ScenarioConfig::default()
        }
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> ScenarioConfig {
        self.seed = seed;
        self
    }

    /// Sets the fast-changing-object ratio.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= r <= 1.0`.
    #[must_use]
    pub fn with_fast_ratio(mut self, r: f64) -> ScenarioConfig {
        assert!((0.0..=1.0).contains(&r), "fast_ratio out of range");
        self.fast_ratio = r;
        self
    }

    /// Sets the node-churn rate (the resilience ablation's x-axis).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= r <= 1.0`.
    #[must_use]
    pub fn with_churn(mut self, r: f64) -> ScenarioConfig {
        assert!((0.0..=1.0).contains(&r), "churn_rate out of range");
        self.churn_rate = r;
        self
    }
}

/// A fully-assembled experiment scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The parameters it was built from.
    pub config: ScenarioConfig,
    /// The road grid.
    pub grid: RoadGrid,
    /// Where each Athena node sits on the grid.
    pub node_sites: Vec<Intersection>,
    /// The Athena node network.
    pub topology: Topology,
    /// Ground truth.
    pub world: WorldModel,
    /// Advertised evidence objects.
    pub catalog: Catalog,
    /// The decision queries to issue.
    pub queries: Vec<QueryInstance>,
    /// Deterministic fault timeline (node churn); empty unless
    /// [`ScenarioConfig::churn_rate`] is positive.
    pub faults: FaultSchedule,
}

impl Scenario {
    /// Builds the scenario determined by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` exceeds the number of intersections, if
    /// `node_count == 0`, or if the object size range is inverted.
    pub fn build(config: ScenarioConfig) -> Scenario {
        assert!(config.node_count > 0, "need at least one node");
        assert!(
            config.min_object_bytes <= config.max_object_bytes,
            "object size range inverted"
        );
        let grid = RoadGrid::new(config.grid_rows, config.grid_cols);
        let mut rng = SmallRng::seed_from_u64(config.seed);

        // --- Node placement -------------------------------------------
        let mut sites: Vec<Intersection> = grid.intersections().collect();
        assert!(
            config.node_count <= sites.len(),
            "more nodes than intersections"
        );
        sites.shuffle(&mut rng);
        let node_sites: Vec<Intersection> = sites[..config.node_count].to_vec();

        // --- Topology: radio links within range, patched to connectivity --
        let link = LinkSpec::with_bandwidth(config.link_bandwidth_bps)
            .latency(SimDuration::from_millis(1));
        let mut topology = Topology::new(config.node_count);
        for i in 0..config.node_count {
            for j in (i + 1)..config.node_count {
                if grid.distance(node_sites[i], node_sites[j]) <= config.radio_range {
                    topology.add_link(NodeId(i), NodeId(j), link);
                }
            }
        }
        connect_components(&mut topology, &node_sites, &grid, link);
        topology.rebuild_routes();

        // --- World dynamics per segment --------------------------------
        let mut world = WorldModel::new(config.seed ^ 0xD1CE);
        let mut segments = grid.segments();
        segments.shuffle(&mut rng);
        let fast_count = (segments.len() as f64 * config.fast_ratio).round() as usize;
        for (k, seg) in segments.iter().enumerate() {
            let (class, validity) = if k < fast_count {
                (DynamicsClass::Fast, config.fast_validity)
            } else {
                (DynamicsClass::Slow, config.slow_validity)
            };
            world.register(seg.label(), class, validity, config.prob_viable);
        }

        // --- Catalog: per-node per-incident-segment cameras ------------
        let mut catalog = Catalog::new();
        for (ni, site) in node_sites.iter().enumerate() {
            let incident = grid.incident_segments(*site);
            for seg in &incident {
                let label = seg.label();
                let dynamics = world.dynamics(&label).expect("registered"); // lint: allow(panic) — the world registers dynamics for every grid segment
                catalog.add(ObjectSpec {
                    name: segment_camera_name(seg, "cam", ni),
                    covers: vec![label.clone()],
                    size: rng.gen_range(config.min_object_bytes..=config.max_object_bytes),
                    source: NodeId(ni),
                    class: dynamics.class,
                    validity: dynamics.validity,
                });
            }
            if config.panoramas && incident.len() > 1 {
                // One wide shot covering every incident segment; priced like
                // a single large picture, cheaper than fetching each view.
                let covers: Vec<_> = incident.iter().map(|s| s.label()).collect();
                let class = incident
                    .iter()
                    .map(|s| world.dynamics(&s.label()).expect("registered").class) // lint: allow(panic) — the world registers dynamics for every grid segment
                    .fold(DynamicsClass::Slow, |acc, c| {
                        if c == DynamicsClass::Fast {
                            DynamicsClass::Fast
                        } else {
                            acc
                        }
                    });
                let validity = incident
                    .iter()
                    .map(|s| world.dynamics(&s.label()).expect("registered").validity) // lint: allow(panic) — the world registers dynamics for every grid segment
                    .min()
                    .expect("non-empty"); // lint: allow(panic) — guarded by incident.len() > 1 above
                catalog.add(ObjectSpec {
                    name: format!("/city/pano/n{ni}").parse().expect("valid name"), // lint: allow(panic) — name is built from numeric components
                    covers,
                    size: rng.gen_range(config.min_object_bytes..=config.max_object_bytes),
                    source: NodeId(ni),
                    class,
                    validity,
                });
            }
        }
        // Segments seen by too few distinct nodes get long-range shots from
        // the nearest additional nodes, so that every label is resolvable
        // (and, when `min_sources_per_segment` asks for it, independently
        // corroborable).
        let min_sources = config.min_sources_per_segment.max(1);
        for seg in grid.segments() {
            let mut sources: Vec<usize> = catalog
                .providers_of(&seg.label())
                .iter()
                .map(|&i| catalog.get(i).source.index())
                .collect();
            sources.sort_unstable();
            sources.dedup();
            if sources.len() >= min_sources {
                continue;
            }
            let mut nearest: Vec<usize> = (0..config.node_count)
                .filter(|ni| !sources.contains(ni))
                .collect();
            nearest.sort_by_key(|&ni| {
                (
                    grid.distance(node_sites[ni], seg.a) + grid.distance(node_sites[ni], seg.b),
                    ni,
                )
            });
            let dynamics = *world.dynamics(&seg.label()).expect("registered"); // lint: allow(panic) — the world registers dynamics for every grid segment
            for &ni in nearest.iter().take(min_sources - sources.len()) {
                catalog.add(ObjectSpec {
                    name: segment_camera_name(&seg, "tele", ni),
                    covers: vec![seg.label()],
                    size: rng.gen_range(config.min_object_bytes..=config.max_object_bytes),
                    source: NodeId(ni),
                    class: dynamics.class,
                    validity: dynamics.validity,
                });
            }
        }

        // --- Queries ----------------------------------------------------
        let all_intersections: Vec<Intersection> = grid.intersections().collect();
        let mut queries = Vec::new();
        let mut qid = 0;
        for ni in 0..config.node_count {
            for qn in 0..config.queries_per_node {
                // Pick origin/destination with some distance between them.
                let (o, d) = loop {
                    let o = *all_intersections.choose(&mut rng).expect("non-empty"); // lint: allow(panic) — a grid always has intersections
                    let d = *all_intersections.choose(&mut rng).expect("non-empty"); // lint: allow(panic) — a grid always has intersections
                    let min_dist = (grid.rows + grid.cols) / 4;
                    if o != d && grid.distance(o, d) >= min_dist.max(2) {
                        break (o, d);
                    }
                };
                let routes = grid.candidate_routes(o, d, config.routes_per_query, &mut rng);
                let terms: Vec<Term> = routes
                    .iter()
                    .map(|r| {
                        Term::all_of(r.segments().iter().map(|s| s.label().as_str().to_string()))
                    })
                    .collect();
                queries.push(QueryInstance {
                    id: qid,
                    origin: NodeId(ni),
                    expr: Dnf::from_terms(terms),
                    deadline: config.deadline,
                    issue_at: SimTime::ZERO
                        + config.issue_offset
                        + config.query_stagger * qn as u64,
                });
                qid += 1;
            }
        }

        // --- Fault schedule (node churn) --------------------------------
        // Seeded separately so churn generation never perturbs the world /
        // catalog / query streams: churn_rate = 0 yields the exact same
        // scenario as before fault injection existed.
        let faults = if config.churn_rate > 0.0 {
            let horizon = queries
                .iter()
                .map(|q| q.issue_at + q.deadline)
                .max()
                .unwrap_or(SimTime::from_secs(1));
            FaultSchedule::uniform_churn(
                config.node_count,
                config.churn_rate,
                horizon,
                config.churn_downtime,
                config.seed ^ 0xFA_17,
            )
        } else {
            FaultSchedule::new()
        };

        Scenario {
            config,
            grid,
            node_sites,
            topology,
            world,
            catalog,
            queries,
            faults,
        }
    }
}

impl Scenario {
    /// Expands every query into a periodic series: `repeats` instances
    /// spaced `period` apart (§IV-B: "Other decisions may need to be done
    /// periodically"). Instance `k` of query `q` gets id
    /// `q.id + k * original_count`, preserving uniqueness.
    ///
    /// # Panics
    ///
    /// Panics if `repeats == 0`.
    #[must_use]
    pub fn with_periodic_queries(mut self, period: SimDuration, repeats: usize) -> Scenario {
        assert!(repeats > 0, "repeats must be at least 1");
        let base = self.queries.clone();
        let n = base.len() as u64;
        let mut all = Vec::with_capacity(base.len() * repeats);
        for k in 0..repeats {
            for q in &base {
                let mut inst = q.clone();
                inst.id = q.id + k as u64 * n;
                inst.issue_at = q.issue_at + period * k as u64;
                all.push(inst);
            }
        }
        self.queries = all;
        self
    }
}

/// Segment-first camera names: `/city/seg/<segment>/<kind>/n<node>`.
///
/// Putting the *segment* before the camera id makes shared-prefix length
/// track semantic similarity (§V-A): two names agreeing on the first three
/// components are two views of the same road segment, so one is a valid
/// approximate substitute for the other.
fn segment_camera_name(seg: &crate::grid::Segment, kind: &str, node: usize) -> Name {
    format!(
        "/city/seg/{}_{}-{}_{}/{kind}/n{node}",
        seg.a.row, seg.a.col, seg.b.row, seg.b.col
    )
    .parse()
    .expect("valid name") // lint: allow(panic) — name is built from numeric components
}

/// Links disconnected components to the main component via nearest pairs.
fn connect_components(
    topology: &mut Topology,
    sites: &[Intersection],
    grid: &RoadGrid,
    link: LinkSpec,
) {
    loop {
        let comps = components(topology);
        if comps.len() <= 1 {
            return;
        }
        // Connect the closest pair of nodes across the first component and
        // any other.
        let main = &comps[0];
        let mut best: Option<(usize, usize, usize)> = None;
        for other in &comps[1..] {
            for &a in main {
                for &b in other {
                    let d = grid.distance(sites[a], sites[b]);
                    if best.map(|(_, _, bd)| d < bd).unwrap_or(true) {
                        best = Some((a, b, d));
                    }
                }
            }
        }
        let (a, b, _) = best.expect("multiple components imply a pair"); // lint: allow(panic) — the caller loops only while components.len() > 1
        topology.add_link(NodeId(a), NodeId(b), link);
    }
}

fn components(topology: &Topology) -> Vec<Vec<usize>> {
    let n = topology.len();
    let mut seen = vec![false; n];
    let mut out = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut stack = vec![start];
        let mut comp = Vec::new();
        seen[start] = true;
        while let Some(u) = stack.pop() {
            comp.push(u);
            for v in topology.neighbors(NodeId(u)) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    stack.push(v.index());
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let c = ScenarioConfig::default();
        assert_eq!((c.grid_rows, c.grid_cols), (8, 8));
        assert_eq!(c.node_count, 30);
        assert_eq!(c.queries_per_node, 3);
        assert_eq!(c.routes_per_query, 5);
        assert_eq!(c.link_bandwidth_bps, 1_000_000);
        assert_eq!(c.min_object_bytes, 100_000);
        assert_eq!(c.max_object_bytes, 1_000_000);
    }

    #[test]
    fn build_paper_scenario() {
        let s = Scenario::build(ScenarioConfig::default());
        assert_eq!(s.topology.len(), 30);
        assert_eq!(s.queries.len(), 90);
        // Every segment label is registered and coverable.
        for seg in s.grid.segments() {
            assert!(s.world.dynamics(&seg.label()).is_some());
            assert!(
                !s.catalog.providers_of(&seg.label()).is_empty(),
                "segment {seg} has no provider"
            );
        }
        // Topology connected.
        let mut topo = s.topology.clone();
        assert!(topo.is_connected());
        // Object sizes in range.
        for o in s.catalog.objects() {
            assert!((100_000..=1_000_000).contains(&o.size));
        }
    }

    #[test]
    fn city_config_builds_connected_and_larger_than_default() {
        let s = Scenario::build(ScenarioConfig::city().with_seed(3));
        assert_eq!(s.topology.len(), 60);
        assert_eq!(s.queries.len(), 120);
        let mut topo = s.topology.clone();
        assert!(topo.is_connected());
        for seg in s.grid.segments() {
            assert!(
                !s.catalog.providers_of(&seg.label()).is_empty(),
                "segment {seg} has no provider"
            );
        }
    }

    #[test]
    fn overload_band_is_a_query_burst() {
        let s = Scenario::build(ScenarioConfig::overload().with_seed(9));
        assert_eq!(s.queries.len(), 8 * 6);
        // The whole burst at one node lands within a deadline window.
        let node0: Vec<_> = s.queries.iter().filter(|q| q.origin == NodeId(0)).collect();
        assert_eq!(node0.len(), 6);
        let span = node0
            .last()
            .unwrap()
            .issue_at
            .saturating_since(node0[0].issue_at);
        assert!(span < s.config.deadline, "burst wider than a deadline");
    }

    #[test]
    fn fast_ratio_respected() {
        for ratio in [0.0, 0.5, 1.0] {
            let s = Scenario::build(ScenarioConfig::small().with_fast_ratio(ratio));
            let (mut fast, mut total) = (0usize, 0usize);
            for (_, d) in s.world.iter() {
                total += 1;
                if d.class == DynamicsClass::Fast {
                    fast += 1;
                }
            }
            let got = fast as f64 / total as f64;
            assert!((got - ratio).abs() < 0.05, "ratio {ratio} produced {got}");
        }
    }

    #[test]
    fn deterministic_build() {
        let a = Scenario::build(ScenarioConfig::small().with_seed(77));
        let b = Scenario::build(ScenarioConfig::small().with_seed(77));
        assert_eq!(a.node_sites, b.node_sites);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.catalog.len(), b.catalog.len());
        for (x, y) in a.catalog.objects().iter().zip(b.catalog.objects()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Scenario::build(ScenarioConfig::small().with_seed(1));
        let b = Scenario::build(ScenarioConfig::small().with_seed(2));
        assert_ne!(a.node_sites, b.node_sites);
    }

    #[test]
    fn queries_reference_coverable_labels() {
        let s = Scenario::build(ScenarioConfig::small());
        for q in &s.queries {
            assert!(!q.expr.terms().is_empty());
            assert!(q.expr.terms().len() <= s.config.routes_per_query);
            for label in q.expr.labels() {
                assert!(
                    !s.catalog.providers_of(&label).is_empty(),
                    "query {} references unprovided label {label}",
                    q.id
                );
            }
        }
    }

    #[test]
    fn query_issue_times_staggered() {
        let s = Scenario::build(ScenarioConfig {
            queries_per_node: 3,
            ..ScenarioConfig::small()
        });
        let node0: Vec<_> = s.queries.iter().filter(|q| q.origin == NodeId(0)).collect();
        assert_eq!(node0.len(), 3);
        assert!(node0[0].issue_at < node0[1].issue_at);
        assert!(node0[1].issue_at < node0[2].issue_at);
    }

    #[test]
    fn panoramas_cover_multiple_labels() {
        let s = Scenario::build(ScenarioConfig::small());
        assert!(
            s.catalog.objects().iter().any(|o| o.covers.len() > 1),
            "expected at least one panorama object"
        );
        // Panoramas inherit the minimum validity of their segments.
        for o in s.catalog.objects() {
            if o.covers.len() > 1 {
                let min_validity = o
                    .covers
                    .iter()
                    .map(|l| s.world.dynamics(l).unwrap().validity)
                    .min()
                    .unwrap();
                assert_eq!(o.validity, min_validity);
            }
        }
    }

    #[test]
    fn min_sources_adds_independent_teles() {
        let mut cfg = ScenarioConfig::small().with_seed(5);
        cfg.min_sources_per_segment = 3;
        let s = Scenario::build(cfg);
        for seg in s.grid.segments() {
            let mut sources: Vec<_> = s
                .catalog
                .providers_of(&seg.label())
                .iter()
                .map(|&i| s.catalog.get(i).source)
                .collect();
            sources.sort();
            sources.dedup();
            assert!(
                sources.len() >= 3,
                "segment {seg} has only {} distinct sources",
                sources.len()
            );
        }
    }

    #[test]
    fn issue_offset_shifts_queries() {
        let mut cfg = ScenarioConfig::small().with_seed(5);
        cfg.issue_offset = SimDuration::from_secs(60);
        let s = Scenario::build(cfg);
        assert!(s
            .queries
            .iter()
            .all(|q| q.issue_at >= SimTime::from_secs(60)));
    }

    #[test]
    fn periodic_expansion() {
        let s = Scenario::build(ScenarioConfig::small().with_seed(3));
        let base_count = s.queries.len();
        let period = SimDuration::from_secs(120);
        let p = s.with_periodic_queries(period, 3);
        assert_eq!(p.queries.len(), base_count * 3);
        // Ids unique.
        let mut ids: Vec<u64> = p.queries.iter().map(|q| q.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), base_count * 3);
        // Same query shifted by k * period.
        let q0 = &p.queries[0];
        let q0_round2 = p
            .queries
            .iter()
            .find(|q| q.id == q0.id + base_count as u64)
            .unwrap();
        assert_eq!(q0_round2.issue_at, q0.issue_at + period);
        assert_eq!(q0_round2.expr, q0.expr);
    }

    #[test]
    #[should_panic(expected = "more nodes than intersections")]
    fn too_many_nodes_rejected() {
        let _ = Scenario::build(ScenarioConfig {
            grid_rows: 2,
            grid_cols: 2,
            node_count: 5,
            ..ScenarioConfig::default()
        });
    }
}

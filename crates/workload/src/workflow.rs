//! Mission workflows and decision-sequence mining (§VIII).
//!
//! "Users, in many cases, adhere to prescribed workflows dictated by their
//! training, standard operating procedures, or doctrine. The workflow is a
//! flowchart of decision points … Since the structure of the flow chart is
//! known, so are the possible sequences of decision points. One can
//! therefore anticipate future decisions given current decision queries."
//!
//! Two pieces:
//!
//! - [`Doctrine`] — a ground-truth flowchart: decision templates with
//!   probabilistic transitions, used to *generate* realistic query
//!   sequences;
//! - [`WorkflowModel`] — a first-order Markov miner that learns transition
//!   statistics from observed sequences and predicts the next decision,
//!   which anticipation (`RunOptions::announce_lead` in `dde-core`) can
//!   turn into a prefetching head start.

use dde_logic::dnf::Dnf;
use dde_logic::time::SimDuration;
use rand::Rng;

/// One decision point in a workflow flowchart.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTemplate {
    /// Human-readable name ("assess-route", "select-shelter", …).
    pub name: String,
    /// The decision logic issued when this point is reached.
    pub expr: Dnf,
    /// Relative deadline for decisions of this kind.
    pub deadline: SimDuration,
}

/// A ground-truth workflow: templates plus a row-stochastic transition
/// matrix (row `i` = probabilities of the next decision after template `i`;
/// a row summing to < 1 terminates the mission with the remainder).
#[derive(Debug, Clone)]
pub struct Doctrine {
    templates: Vec<DecisionTemplate>,
    transitions: Vec<Vec<f64>>,
    start: usize,
}

impl Doctrine {
    /// Creates a doctrine.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `n × n`, any row sums to more than 1 (+ε),
    /// any entry is negative, or `start` is out of range.
    pub fn new(
        templates: Vec<DecisionTemplate>,
        transitions: Vec<Vec<f64>>,
        start: usize,
    ) -> Doctrine {
        let n = templates.len();
        assert!(start < n, "start template out of range");
        assert_eq!(transitions.len(), n, "transition matrix must be n x n");
        for row in &transitions {
            assert_eq!(row.len(), n, "transition matrix must be n x n");
            assert!(row.iter().all(|p| *p >= 0.0), "negative probability");
            assert!(
                row.iter().sum::<f64>() <= 1.0 + 1e-9,
                "row sums to more than 1"
            );
        }
        Doctrine {
            templates,
            transitions,
            start,
        }
    }

    /// The decision templates.
    pub fn templates(&self) -> &[DecisionTemplate] {
        &self.templates
    }

    /// Samples one mission: the sequence of template indices visited,
    /// capped at `max_len`.
    pub fn sample<R: Rng>(&self, rng: &mut R, max_len: usize) -> Vec<usize> {
        let mut seq = vec![self.start];
        let mut cur = self.start;
        while seq.len() < max_len {
            let row = &self.transitions[cur];
            let mut x: f64 = rng.gen();
            let mut next = None;
            for (j, p) in row.iter().enumerate() {
                if x < *p {
                    next = Some(j);
                    break;
                }
                x -= p;
            }
            match next {
                Some(j) => {
                    seq.push(j);
                    cur = j;
                }
                None => break, // mission ends
            }
        }
        seq
    }
}

/// A first-order Markov model mined from observed decision sequences.
///
/// # Examples
///
/// ```
/// use dde_workload::workflow::WorkflowModel;
///
/// let mut model = WorkflowModel::new(3);
/// model.observe_sequence(&[0, 1, 2]);
/// model.observe_sequence(&[0, 1, 1]);
/// assert_eq!(model.predict_next(0), Some(1));
/// assert!((model.transition_prob(0, 1) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct WorkflowModel {
    n: usize,
    counts: Vec<Vec<u64>>,
}

impl WorkflowModel {
    /// Creates an empty model over `n` decision templates.
    pub fn new(n: usize) -> WorkflowModel {
        WorkflowModel {
            n,
            counts: vec![vec![0; n]; n],
        }
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the model covers zero templates.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Records one observed transition.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn observe(&mut self, from: usize, to: usize) {
        assert!(from < self.n && to < self.n, "template index out of range");
        self.counts[from][to] += 1;
    }

    /// Records every adjacent pair of an observed mission sequence.
    pub fn observe_sequence(&mut self, seq: &[usize]) {
        for w in seq.windows(2) {
            self.observe(w[0], w[1]);
        }
    }

    /// Total observations out of `from`.
    pub fn outgoing(&self, from: usize) -> u64 {
        self.counts[from].iter().sum()
    }

    /// Maximum-likelihood probability of `from → to` (0 when unobserved).
    pub fn transition_prob(&self, from: usize, to: usize) -> f64 {
        let total = self.outgoing(from);
        if total == 0 {
            0.0
        } else {
            self.counts[from][to] as f64 / total as f64
        }
    }

    /// The most likely next decision after `current`, or `None` when
    /// nothing has been observed. Ties break toward the lower index.
    pub fn predict_next(&self, current: usize) -> Option<usize> {
        let row = &self.counts[current];
        let best = row
            .iter()
            .enumerate()
            .max_by_key(|(i, c)| (**c, self.n - i));
        match best {
            Some((i, c)) if *c > 0 => Some(i),
            _ => None,
        }
    }

    /// The `k` most likely next decisions, most likely first.
    pub fn top_k(&self, current: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.n)
            .filter(|&j| self.counts[current][j] > 0)
            .collect();
        idx.sort_by_key(|&j| (std::cmp::Reverse(self.counts[current][j]), j));
        idx.truncate(k);
        idx
    }

    /// Fraction of transitions in `sequences` whose successor the model
    /// predicts correctly (top-1).
    pub fn top1_accuracy(&self, sequences: &[Vec<usize>]) -> f64 {
        let mut total = 0u64;
        let mut correct = 0u64;
        for seq in sequences {
            for w in seq.windows(2) {
                total += 1;
                if self.predict_next(w[0]) == Some(w[1]) {
                    correct += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_logic::dnf::Term;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn template(name: &str) -> DecisionTemplate {
        DecisionTemplate {
            name: name.into(),
            expr: Dnf::from_terms(vec![Term::all_of([name])]),
            deadline: SimDuration::from_secs(60),
        }
    }

    fn doctrine() -> Doctrine {
        // recon → assess (0.9) ; assess → evac (0.6) | resupply (0.3)
        // evac → end ; resupply → assess (0.8)
        Doctrine::new(
            vec![
                template("recon"),
                template("assess"),
                template("evac"),
                template("resupply"),
            ],
            vec![
                vec![0.0, 0.9, 0.0, 0.0],
                vec![0.0, 0.0, 0.6, 0.3],
                vec![0.0, 0.0, 0.0, 0.0],
                vec![0.0, 0.8, 0.0, 0.0],
            ],
            0,
        )
    }

    #[test]
    fn doctrine_sequences_follow_flowchart() {
        let d = doctrine();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let seq = d.sample(&mut rng, 20);
            assert_eq!(seq[0], 0, "missions start at recon");
            for w in seq.windows(2) {
                // Only legal flowchart edges appear.
                let legal = matches!((w[0], w[1]), (0, 1) | (1, 2) | (1, 3) | (3, 1));
                assert!(legal, "illegal transition {w:?}");
            }
        }
    }

    #[test]
    fn doctrine_sample_caps_length() {
        // A self-loop never terminates on its own; the cap must.
        let d = Doctrine::new(vec![template("loop")], vec![vec![1.0]], 0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng, 7).len(), 7);
    }

    #[test]
    #[should_panic(expected = "row sums to more than 1")]
    fn invalid_doctrine_rejected() {
        let _ = Doctrine::new(
            vec![template("a"), template("b")],
            vec![vec![0.9, 0.9], vec![0.0, 0.0]],
            0,
        );
    }

    #[test]
    fn model_learns_dominant_transitions() {
        let d = doctrine();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut model = WorkflowModel::new(4);
        for _ in 0..200 {
            model.observe_sequence(&d.sample(&mut rng, 20));
        }
        // The dominant successors follow the doctrine.
        assert_eq!(model.predict_next(0), Some(1)); // recon → assess
        assert_eq!(model.predict_next(1), Some(2)); // assess → evac (0.6 > 0.3)
        assert_eq!(model.predict_next(3), Some(1)); // resupply → assess
        assert_eq!(model.predict_next(2), None); // evac is terminal
                                                 // Learned probabilities are close to ground truth.
        assert!((model.transition_prob(1, 2) - 0.6 / 0.9).abs() < 0.1);
        assert_eq!(model.top_k(1, 2), vec![2, 3]);
    }

    #[test]
    fn accuracy_reflects_predictability() {
        let d = doctrine();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut model = WorkflowModel::new(4);
        let train: Vec<Vec<usize>> = (0..300).map(|_| d.sample(&mut rng, 20)).collect();
        for s in &train {
            model.observe_sequence(s);
        }
        let test: Vec<Vec<usize>> = (0..100).map(|_| d.sample(&mut rng, 20)).collect();
        let acc = model.top1_accuracy(&test);
        // recon→assess and resupply→assess are deterministic; assess→? is
        // predictable 2 out of 3 times: overall well above chance (1/4).
        assert!(acc > 0.7, "top-1 accuracy {acc}");
        assert!(acc < 1.0, "the branchy step cannot be perfectly predicted");
    }

    #[test]
    fn empty_model_predicts_nothing() {
        let m = WorkflowModel::new(3);
        assert_eq!(m.predict_next(1), None);
        assert_eq!(m.transition_prob(0, 1), 0.0);
        assert!(m.top_k(0, 5).is_empty());
        assert_eq!(m.top1_accuracy(&[vec![0, 1, 2]]), 0.0);
        assert_eq!(m.top1_accuracy(&[]), 1.0);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    proptest! {
        /// Transition probabilities out of any state form a distribution.
        #[test]
        fn learned_rows_are_stochastic(
            seqs in prop::collection::vec(
                prop::collection::vec(0usize..4, 2..10), 1..20),
        ) {
            let mut m = WorkflowModel::new(4);
            for s in &seqs {
                m.observe_sequence(s);
            }
            for from in 0..4 {
                let sum: f64 = (0..4).map(|to| m.transition_prob(from, to)).sum();
                if m.outgoing(from) > 0 {
                    prop_assert!((sum - 1.0).abs() < 1e-9);
                } else {
                    prop_assert_eq!(sum, 0.0);
                }
                // predict_next is the argmax of the row.
                if let Some(best) = m.predict_next(from) {
                    for to in 0..4 {
                        prop_assert!(
                            m.transition_prob(from, best) >= m.transition_prob(from, to)
                        );
                    }
                }
            }
        }
    }
}

//! # dde-workload — the post-disaster route-assessment workload (§VII)
//!
//! Deterministic generation of everything the paper's evaluation scenario
//! needs:
//!
//! - [`grid`] — the Manhattan road lattice: intersections, segments,
//!   candidate-route generation via randomized shortest paths;
//! - [`world`] — seeded ground truth with fast/slow dynamics: each label's
//!   value is piecewise-constant over epochs equal to its validity interval;
//! - [`catalog`] — the advertised evidence objects (per-segment cameras,
//!   multi-segment panoramas, gap-filling tele shots) with sizes in the
//!   paper's 100 KB – 1 MB range;
//! - [`scenario`] — assembly of topology + world + catalog + queries from a
//!   [`ScenarioConfig`] whose defaults reproduce the paper's setup (8×8
//!   grid, ~30 nodes, 1 Mbps links, 3 queries/node, 5 routes/query);
//! - [`workflow`] — mission doctrines (flowcharts of decision points) and
//!   the Markov miner that anticipates the next decision (§VIII).

#![deny(missing_docs)]
// Determinism guardrails (see clippy.toml and dde-lint): hashed collections
// and ambient clocks/env reads are disallowed in simulation library code.
#![deny(clippy::disallowed_methods, clippy::disallowed_types)]

pub mod catalog;
pub mod grid;
pub mod scenario;
pub mod workflow;
pub mod world;

pub use catalog::{Catalog, ObjectSpec};
pub use grid::{Intersection, RoadGrid, Route, Segment};
pub use scenario::{QueryInstance, Scenario, ScenarioConfig};
pub use workflow::{DecisionTemplate, Doctrine, WorkflowModel};
pub use world::{DynamicsClass, LabelDynamics, WorldModel};

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::catalog::{Catalog, ObjectSpec};
    pub use crate::grid::{Intersection, RoadGrid, Route, Segment};
    pub use crate::scenario::{QueryInstance, Scenario, ScenarioConfig};
    pub use crate::workflow::{DecisionTemplate, Doctrine, WorkflowModel};
    pub use crate::world::{DynamicsClass, WorldModel};
}

//! The evidence-object catalog: who can supply which evidence (§II-B).
//!
//! "Sources that originate data, such as sensors, must advertise the type of
//! data they generate and the label names that their data objects help
//! resolve." The catalog is the global registry of advertised objects that
//! the lookup service (refs \[8,9]) would provide in a deployment.

use crate::world::DynamicsClass;
use dde_logic::label::Label;
use dde_logic::time::SimDuration;
use dde_naming::name::Name;
use dde_netsim::topology::NodeId;
use std::collections::BTreeMap;

/// An advertised evidence object.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectSpec {
    /// Hierarchical content name.
    pub name: Name,
    /// Labels this object's evidence can resolve (a camera picture may cover
    /// several nearby road segments at once).
    pub covers: Vec<Label>,
    /// Object size in bytes (the retrieval cost).
    pub size: u64,
    /// The node hosting the sensor.
    pub source: NodeId,
    /// Dynamics class of the measured phenomenon.
    pub class: DynamicsClass,
    /// Validity interval of a fresh sample.
    pub validity: SimDuration,
}

/// Index of all advertised objects.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    objects: Vec<ObjectSpec>,
    by_label: BTreeMap<Label, Vec<usize>>,
    by_name: BTreeMap<Name, usize>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers an object, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if an object with the same name is already registered.
    pub fn add(&mut self, spec: ObjectSpec) -> usize {
        let idx = self.objects.len();
        let prev = self.by_name.insert(spec.name.clone(), idx);
        assert!(prev.is_none(), "duplicate object name: {}", spec.name);
        for l in &spec.covers {
            self.by_label.entry(l.clone()).or_default().push(idx);
        }
        self.objects.push(spec);
        idx
    }

    /// All objects, in registration order.
    pub fn objects(&self) -> &[ObjectSpec] {
        &self.objects
    }

    /// The object with index `idx`.
    pub fn get(&self, idx: usize) -> &ObjectSpec {
        &self.objects[idx]
    }

    /// The object with the given name.
    pub fn by_name(&self, name: &Name) -> Option<&ObjectSpec> {
        self.by_name.get(name).map(|&i| &self.objects[i])
    }

    /// Indices of objects whose evidence can resolve `label`.
    pub fn providers_of(&self, label: &Label) -> &[usize] {
        self.by_label.get(label).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The cheapest (smallest) provider of `label`, if any.
    pub fn cheapest_provider(&self, label: &Label) -> Option<&ObjectSpec> {
        self.providers_of(label)
            .iter()
            .map(|&i| &self.objects[i])
            .min_by_key(|o| (o.size, o.name.clone()))
    }

    /// All labels with at least one provider.
    pub fn covered_labels(&self) -> impl Iterator<Item = &Label> {
        self.by_label.keys()
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, covers: &[&str], size: u64, node: usize) -> ObjectSpec {
        ObjectSpec {
            name: name.parse().unwrap(),
            covers: covers.iter().map(|s| Label::new(*s)).collect(),
            size,
            source: NodeId(node),
            class: DynamicsClass::Slow,
            validity: SimDuration::from_secs(60),
        }
    }

    #[test]
    fn add_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        let i0 = c.add(spec("/cam/0", &["segA", "segB"], 500, 0));
        let i1 = c.add(spec("/cam/1", &["segB"], 200, 1));
        assert_eq!((i0, i1), (0, 1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.providers_of(&Label::new("segB")), &[0, 1]);
        assert_eq!(c.providers_of(&Label::new("segA")), &[0]);
        assert!(c.providers_of(&Label::new("ghost")).is_empty());
        assert_eq!(c.by_name(&"/cam/1".parse().unwrap()).unwrap().size, 200);
        assert!(c.by_name(&"/cam/9".parse().unwrap()).is_none());
    }

    #[test]
    fn cheapest_provider_picks_smallest() {
        let mut c = Catalog::new();
        c.add(spec("/cam/0", &["segB"], 500, 0));
        c.add(spec("/cam/1", &["segB"], 200, 1));
        assert_eq!(
            c.cheapest_provider(&Label::new("segB")).unwrap().name,
            "/cam/1".parse().unwrap()
        );
        assert!(c.cheapest_provider(&Label::new("ghost")).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate object name")]
    fn duplicate_name_rejected() {
        let mut c = Catalog::new();
        c.add(spec("/cam/0", &["a"], 1, 0));
        c.add(spec("/cam/0", &["b"], 2, 0));
    }

    #[test]
    fn covered_labels_sorted() {
        let mut c = Catalog::new();
        c.add(spec("/cam/0", &["z", "a"], 1, 0));
        let labels: Vec<_> = c.covered_labels().map(Label::as_str).collect();
        assert_eq!(labels, vec!["a", "z"]);
    }
}

//! Forwarding Information Base and Pending Interest Table (§V-A, §VI-B).
//!
//! "Routing tables directly store information on how to route interests to
//! nodes who previously advertized having data matching a name prefix" —
//! the [`Fib`]. "Each node maintains an *Interest Table* that keeps track of
//! which data objects have been requested by which sources for what
//! queries" — the [`Pit`], which also suppresses duplicate downstream
//! requests.

use crate::name::Name;
use crate::tree::NameTree;
use dde_logic::time::SimTime;
use std::collections::BTreeSet;

/// Forwarding Information Base: name prefixes → next-hop node ids.
///
/// Generic over the node-id type so the networking layer can plug its own.
#[derive(Debug, Clone, Default)]
pub struct Fib<N> {
    routes: NameTree<N>,
}

impl<N: Copy> Fib<N> {
    /// Creates an empty FIB.
    pub fn new() -> Fib<N> {
        Fib {
            routes: NameTree::new(),
        }
    }

    /// Advertises that content under `prefix` is reachable via `next_hop`.
    /// Returns the previous next hop for that exact prefix, if any.
    pub fn advertise(&mut self, prefix: &Name, next_hop: N) -> Option<N> {
        self.routes.insert(prefix, next_hop)
    }

    /// Withdraws the route for exactly `prefix`.
    pub fn withdraw(&mut self, prefix: &Name) -> Option<N> {
        self.routes.remove(prefix)
    }

    /// Longest-prefix-match lookup: the next hop for `name`.
    pub fn lookup(&self, name: &Name) -> Option<N> {
        self.routes.longest_prefix(name).map(|(_, n)| *n)
    }

    /// Number of advertised prefixes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether no prefixes are advertised.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

/// One pending-interest record: who asked for an object, for which query.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Interest<N, Q> {
    /// The neighbor (or local marker) that asked.
    pub requester: N,
    /// The query on whose behalf the request was made.
    pub query: Q,
    /// When the interest lapses.
    pub expires_at: SimTime,
}

/// Pending Interest Table: object name → set of interests.
#[derive(Debug, Clone)]
pub struct Pit<N, Q> {
    entries: NameTree<BTreeSet<Interest<N, Q>>>,
    len: usize,
}

impl<N, Q> Default for Pit<N, Q> {
    fn default() -> Self {
        Pit {
            entries: NameTree::new(),
            len: 0,
        }
    }
}

impl<N, Q> Pit<N, Q>
where
    N: Ord + Clone,
    Q: Ord + Clone,
{
    /// Creates an empty PIT.
    pub fn new() -> Pit<N, Q> {
        Pit::default()
    }

    /// Records an interest in `name`. Returns `true` if this is the *first*
    /// pending interest for the name — i.e. the request should be forwarded
    /// downstream; further interests are aggregated ("avoid passing along
    /// unnecessary duplicate data object requests", §VI-B).
    pub fn register(&mut self, name: &Name, requester: N, query: Q, expires_at: SimTime) -> bool {
        let interest = Interest {
            requester,
            query,
            expires_at,
        };
        match self.entries.get_mut(name) {
            Some(set) => {
                if set.insert(interest) {
                    self.len += 1;
                }
                false
            }
            None => {
                let mut set = BTreeSet::new();
                set.insert(interest);
                self.entries.insert(name, set);
                self.len += 1;
                true
            }
        }
    }

    /// Consumes and returns all interests pending on exactly `name`
    /// (typically upon data arrival, to fan the object back out).
    pub fn take(&mut self, name: &Name) -> Vec<Interest<N, Q>> {
        match self.entries.remove(name) {
            Some(set) => {
                self.len -= set.len();
                set.into_iter().collect()
            }
            None => Vec::new(),
        }
    }

    /// Interests pending on exactly `name`, without consuming them.
    pub fn peek(&self, name: &Name) -> impl Iterator<Item = &Interest<N, Q>> {
        self.entries.get(name).into_iter().flatten()
    }

    /// Whether any interest is pending on exactly `name`.
    pub fn has_pending(&self, name: &Name) -> bool {
        self.entries.get(name).is_some_and(|s| !s.is_empty())
    }

    /// Drops interests that have lapsed by `now`; returns how many were
    /// dropped.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let names: Vec<Name> = self.entries.iter().map(|(n, _)| n).collect();
        let mut dropped = 0;
        for name in names {
            let mut empty = false;
            if let Some(set) = self.entries.get_mut(&name) {
                let before = set.len();
                set.retain(|i| i.expires_at >= now);
                dropped += before - set.len();
                self.len -= before - set.len();
                empty = set.is_empty();
            }
            if empty {
                self.entries.remove(&name);
            }
        }
        dropped
    }

    /// Total number of pending interests (across all names).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn fib_longest_prefix_routing() {
        let mut fib: Fib<u32> = Fib::new();
        assert!(fib.is_empty());
        fib.advertise(&n("/city"), 1);
        fib.advertise(&n("/city/market"), 2);
        assert_eq!(fib.lookup(&n("/city/market/cam1")), Some(2));
        assert_eq!(fib.lookup(&n("/city/port")), Some(1));
        assert_eq!(fib.lookup(&n("/rural")), None);
        assert_eq!(fib.len(), 2);
        assert_eq!(fib.withdraw(&n("/city/market")), Some(2));
        assert_eq!(fib.lookup(&n("/city/market/cam1")), Some(1));
    }

    #[test]
    fn fib_advertise_replaces() {
        let mut fib: Fib<u32> = Fib::new();
        assert_eq!(fib.advertise(&n("/a"), 1), None);
        assert_eq!(fib.advertise(&n("/a"), 9), Some(1));
        assert_eq!(fib.lookup(&n("/a")), Some(9));
    }

    #[test]
    fn pit_aggregates_duplicates() {
        let mut pit: Pit<u32, u32> = Pit::new();
        // First interest → forward.
        assert!(pit.register(&n("/obj"), 1, 100, t(10)));
        // Second requester → aggregate, don't forward.
        assert!(!pit.register(&n("/obj"), 2, 100, t(10)));
        // Same requester, same query, later expiry → new record, no forward.
        assert!(!pit.register(&n("/obj"), 1, 100, t(20)));
        assert_eq!(pit.len(), 3);
        assert!(pit.has_pending(&n("/obj")));
        assert!(!pit.has_pending(&n("/other")));
    }

    #[test]
    fn pit_take_consumes_all() {
        let mut pit: Pit<u32, u32> = Pit::new();
        pit.register(&n("/obj"), 1, 100, t(10));
        pit.register(&n("/obj"), 2, 101, t(10));
        let interests = pit.take(&n("/obj"));
        assert_eq!(interests.len(), 2);
        assert!(pit.is_empty());
        assert!(pit.take(&n("/obj")).is_empty());
        // Registering again counts as first once more.
        assert!(pit.register(&n("/obj"), 3, 102, t(20)));
    }

    #[test]
    fn pit_expire_drops_lapsed() {
        let mut pit: Pit<u32, u32> = Pit::new();
        pit.register(&n("/a"), 1, 1, t(5));
        pit.register(&n("/a"), 2, 2, t(50));
        pit.register(&n("/b"), 3, 3, t(5));
        assert_eq!(pit.expire(t(10)), 2);
        assert_eq!(pit.len(), 1);
        assert!(pit.has_pending(&n("/a")));
        assert!(!pit.has_pending(&n("/b")));
        // Expired names with no residue are removed entirely; registering /b
        // again forwards.
        assert!(pit.register(&n("/b"), 4, 4, t(60)));
    }

    #[test]
    fn pit_peek_does_not_consume() {
        let mut pit: Pit<u32, u32> = Pit::new();
        pit.register(&n("/a"), 1, 7, t(5));
        assert_eq!(pit.peek(&n("/a")).count(), 1);
        assert_eq!(pit.len(), 1);
    }
}

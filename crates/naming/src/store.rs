//! Freshness-aware content store (§VI-B/C).
//!
//! "Each node also serves as a data cache … Cached data objects will decay
//! over time, and eventually expire as they reach their freshness deadlines
//! (age out of their validity intervals)." The store is capacity-bounded in
//! bytes; eviction prefers expired entries, then least-recently-used.

use crate::name::Name;
use dde_logic::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A cached object's bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredObject<T> {
    /// The payload (typically object metadata or bytes).
    pub value: T,
    /// Size charged against store capacity.
    pub size: u64,
    /// When the underlying measurement was sampled.
    pub sampled_at: SimTime,
    /// Validity interval of the measurement.
    pub validity: SimDuration,
    last_used: SimTime,
}

impl<T> StoredObject<T> {
    /// The instant the entry stops being fresh.
    pub fn expires_at(&self) -> SimTime {
        self.sampled_at.saturating_add(self.validity)
    }

    /// Whether the entry is fresh at `now`.
    pub fn is_fresh_at(&self, now: SimTime) -> bool {
        now <= self.expires_at()
    }
}

/// A byte-capacity-bounded, freshness-aware cache keyed by [`Name`].
///
/// # Examples
///
/// ```
/// use dde_naming::store::ContentStore;
/// use dde_logic::time::{SimDuration, SimTime};
///
/// let mut cs = ContentStore::new(1_000_000);
/// let name = "/city/cam1".parse()?;
/// cs.insert(&name, "jpeg", 300_000, SimTime::ZERO, SimDuration::from_secs(60));
/// assert!(cs.get_fresh(&name, SimTime::from_secs(30)).is_some());
/// assert!(cs.get_fresh(&name, SimTime::from_secs(90)).is_none()); // expired
/// # Ok::<(), dde_naming::name::NameError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ContentStore<T> {
    capacity: u64,
    used: u64,
    entries: BTreeMap<Name, StoredObject<T>>,
    /// Cumulative eviction count (for metrics).
    pub evictions: u64,
}

impl<T> ContentStore<T> {
    /// Creates a store holding at most `capacity_bytes`.
    pub fn new(capacity_bytes: u64) -> ContentStore<T> {
        ContentStore {
            capacity: capacity_bytes,
            used: 0,
            entries: BTreeMap::new(),
            evictions: 0,
        }
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// The configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts an object, evicting as needed. Objects larger than the whole
    /// store are not cached (returns `false`). Re-inserting an existing name
    /// replaces the entry.
    pub fn insert(
        &mut self,
        name: &Name,
        value: T,
        size: u64,
        sampled_at: SimTime,
        validity: SimDuration,
    ) -> bool {
        if size > self.capacity {
            return false;
        }
        if let Some(old) = self.entries.remove(name) {
            self.used -= old.size;
        }
        // Evict until it fits: expired entries first (oldest expiry first),
        // then strict LRU.
        while self.used + size > self.capacity {
            let Some(victim) = self.pick_victim(sampled_at) else {
                break;
            };
            let Some(old) = self.entries.remove(&victim) else {
                break; // unreachable: the victim was drawn from `entries`
            };
            self.used -= old.size;
            self.evictions += 1;
        }
        debug_assert!(self.used + size <= self.capacity);
        self.entries.insert(
            name.clone(),
            StoredObject {
                value,
                size,
                sampled_at,
                validity,
                last_used: sampled_at,
            },
        );
        self.used += size;
        true
    }

    fn pick_victim(&self, now: SimTime) -> Option<Name> {
        // Expired first (earliest expiry), else LRU; ties by name for
        // determinism.
        let expired = self
            .entries
            .iter()
            .filter(|(_, o)| !o.is_fresh_at(now))
            .min_by_key(|(n, o)| (o.expires_at(), (*n).clone()))
            .map(|(n, _)| n.clone());
        expired.or_else(|| {
            self.entries
                .iter()
                .min_by_key(|(n, o)| (o.last_used, (*n).clone()))
                .map(|(n, _)| n.clone())
        })
    }

    /// Returns the entry for `name` if present *and fresh* at `now`,
    /// updating its LRU stamp.
    pub fn get_fresh(&mut self, name: &Name, now: SimTime) -> Option<&StoredObject<T>> {
        let entry = self.entries.get_mut(name)?;
        if !entry.is_fresh_at(now) {
            return None;
        }
        entry.last_used = now;
        Some(&*entry)
    }

    /// Returns the entry for `name` regardless of freshness, without
    /// touching LRU state.
    pub fn peek(&self, name: &Name) -> Option<&StoredObject<T>> {
        self.entries.get(name)
    }

    /// Removes the entry for `name`.
    pub fn remove(&mut self, name: &Name) -> Option<T> {
        let old = self.entries.remove(name)?;
        self.used -= old.size;
        Some(old.value)
    }

    /// Drops every expired entry; returns how many were evicted.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        let mut freed = 0u64;
        self.entries.retain(|_, o| {
            let fresh = o.is_fresh_at(now);
            if !fresh {
                freed += o.size;
            }
            fresh
        });
        self.used -= freed;
        before - self.entries.len()
    }

    /// Iterates over `(name, entry)` pairs in ascending name order — a
    /// *defined* order, so consumers cannot inherit replay-breaking
    /// iteration nondeterminism from the store (dde-lint rule R1).
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &StoredObject<T>)> {
        self.entries.iter()
    }

    /// The fresh entry (at `now`) whose name shares the longest prefix with
    /// `name`, requiring at least `min_shared` shared components — the
    /// approximate-substitution lookup of §V-A against live cache contents.
    pub fn closest_fresh(
        &self,
        name: &Name,
        now: SimTime,
        min_shared: usize,
    ) -> Option<(&Name, &StoredObject<T>)> {
        self.entries
            .iter()
            .filter(|(_, o)| o.is_fresh_at(now))
            .map(|(n, o)| (n.shared_prefix_len(name), n, o))
            .filter(|(shared, _, _)| *shared >= min_shared)
            .max_by(|(sa, na, _), (sb, nb, _)| sa.cmp(sb).then_with(|| nb.cmp(na)))
            .map(|(_, n, o)| (n, o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn insert_get_expire() {
        let mut cs = ContentStore::new(1000);
        assert!(cs.insert(&n("/a"), 1, 100, t(0), d(10)));
        assert_eq!(cs.len(), 1);
        assert_eq!(cs.used_bytes(), 100);
        assert!(cs.get_fresh(&n("/a"), t(5)).is_some());
        assert!(cs.get_fresh(&n("/a"), t(11)).is_none());
        // Still present (stale), visible via peek.
        assert!(cs.peek(&n("/a")).is_some());
    }

    #[test]
    fn oversized_object_rejected() {
        let mut cs = ContentStore::new(100);
        assert!(!cs.insert(&n("/big"), 1, 101, t(0), d(10)));
        assert!(cs.is_empty());
    }

    #[test]
    fn reinsert_replaces_and_accounts() {
        let mut cs = ContentStore::new(1000);
        cs.insert(&n("/a"), 1, 400, t(0), d(10));
        cs.insert(&n("/a"), 2, 100, t(1), d(10));
        assert_eq!(cs.used_bytes(), 100);
        assert_eq!(cs.get_fresh(&n("/a"), t(2)).unwrap().value, 2);
    }

    #[test]
    fn eviction_prefers_expired() {
        let mut cs = ContentStore::new(300);
        cs.insert(&n("/expired"), 1, 150, t(0), d(1));
        cs.insert(&n("/fresh"), 2, 150, t(0), d(100));
        // At t=50, inserting a 150-byte object must evict /expired.
        assert!(cs.insert(&n("/new"), 3, 150, t(50), d(100)));
        assert!(cs.peek(&n("/expired")).is_none());
        assert!(cs.peek(&n("/fresh")).is_some());
        assert_eq!(cs.evictions, 1);
    }

    #[test]
    fn eviction_falls_back_to_lru() {
        let mut cs = ContentStore::new(300);
        cs.insert(&n("/old"), 1, 150, t(0), d(1000));
        cs.insert(&n("/newer"), 2, 150, t(10), d(1000));
        // Touch /old so /newer becomes LRU.
        cs.get_fresh(&n("/old"), t(20));
        assert!(cs.insert(&n("/third"), 3, 150, t(30), d(1000)));
        assert!(
            cs.peek(&n("/newer")).is_none(),
            "LRU victim should be /newer"
        );
        assert!(cs.peek(&n("/old")).is_some());
    }

    #[test]
    fn purge_expired_frees_space() {
        let mut cs = ContentStore::new(1000);
        cs.insert(&n("/a"), 1, 100, t(0), d(1));
        cs.insert(&n("/b"), 2, 100, t(0), d(100));
        assert_eq!(cs.purge_expired(t(50)), 1);
        assert_eq!(cs.used_bytes(), 100);
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn remove_returns_value() {
        let mut cs = ContentStore::new(1000);
        cs.insert(&n("/a"), 42, 10, t(0), d(1));
        assert_eq!(cs.remove(&n("/a")), Some(42));
        assert_eq!(cs.remove(&n("/a")), None);
        assert_eq!(cs.used_bytes(), 0);
    }

    #[test]
    fn closest_fresh_substitution() {
        let mut cs = ContentStore::new(10_000);
        cs.insert(&n("/city/market/cam2"), 1, 10, t(0), d(100));
        cs.insert(&n("/city/market/cam3"), 2, 10, t(0), d(1)); // will expire
        let got = cs.closest_fresh(&n("/city/market/cam1"), t(50), 2);
        let (name, obj) = got.unwrap();
        assert_eq!(*name, n("/city/market/cam2"));
        assert_eq!(obj.value, 1);
        // Below min_shared threshold: nothing.
        assert!(cs.closest_fresh(&n("/rural/cam"), t(50), 1).is_none());
    }

    /// Regression test for the latent replay hazard dde-lint rule R1 found:
    /// the store used to be `HashMap`-keyed with `iter()` documented as
    /// "arbitrary order", so any consumer folding over it inherited std's
    /// per-instance-seeded iteration order — identical seeds could produce
    /// different `RunReport`s. `iter()` must yield a *defined* order
    /// (ascending by name), independent of insertion order.
    #[test]
    fn iteration_order_is_defined_and_insertion_independent() {
        let names = ["/g", "/c", "/a", "/h", "/e", "/b", "/f", "/d"];
        let mut forward = ContentStore::new(10_000);
        for (i, s) in names.iter().enumerate() {
            forward.insert(&n(s), i, 10, t(0), d(100));
        }
        let mut reverse = ContentStore::new(10_000);
        for (i, s) in names.iter().rev().enumerate() {
            reverse.insert(&n(s), i, 10, t(0), d(100));
        }
        let fwd: Vec<Name> = forward.iter().map(|(k, _)| k.clone()).collect();
        let rev: Vec<Name> = reverse.iter().map(|(k, _)| k.clone()).collect();
        let mut sorted = names.map(n).to_vec();
        sorted.sort();
        assert_eq!(fwd, sorted, "iter() must be ascending by name");
        assert_eq!(
            fwd, rev,
            "iteration order must not depend on insertion order"
        );
    }

    #[test]
    fn eviction_loop_fills_large_insert() {
        let mut cs = ContentStore::new(300);
        cs.insert(&n("/a"), 1, 100, t(0), d(1000));
        cs.insert(&n("/b"), 2, 100, t(1), d(1000));
        cs.insert(&n("/c"), 3, 100, t(2), d(1000));
        // 250-byte insert must evict multiple entries.
        assert!(cs.insert(&n("/d"), 4, 250, t(3), d(1000)));
        assert!(cs.used_bytes() <= 300);
        assert!(cs.peek(&n("/d")).is_some());
        assert!(cs.evictions >= 2);
    }
}

//! # dde-naming — hierarchical semantic naming and indexing
//!
//! The networking substrate of §V of the paper: content, labels, and
//! annotators all live in one hierarchical name space; names encode
//! semantics, so shared-prefix length proxies information similarity.
//!
//! - [`name`] — path-like content names with shared-prefix similarity;
//! - [`symbol`] — deterministic, insertion-ordered interning of name
//!   components, making hot-path comparisons integer-speed (§V-A);
//! - [`tree`] — a name trie with exact, longest-prefix (FIB-style), and
//!   approximate (closest-name) lookup — the "hierarchical semantic
//!   indexing" of §V-A;
//! - [`fib`] — the Forwarding Information Base and Pending Interest Table of
//!   the NDN-like forwarding plane (§VI-B);
//! - [`store`] — a freshness-aware, capacity-bounded content store with
//!   expired-first/LRU eviction and approximate substitution (§VI-B/C);
//! - [`utility`] — sub-additive information utility and greedy budgeted
//!   triage for overload (§V-B);
//! - [`criticality`] — preferential treatment for critical name-space
//!   regions (§V-C).

#![deny(missing_docs)]
// Determinism guardrails (see clippy.toml and dde-lint): hashed collections
// and ambient clocks/env reads are disallowed in simulation library code.
#![deny(clippy::disallowed_methods, clippy::disallowed_types)]

pub mod criticality;
pub mod fib;
pub mod name;
pub mod store;
pub mod symbol;
pub mod tree;
pub mod utility;

pub use criticality::{Criticality, CriticalityMap};
pub use fib::{Fib, Interest, Pit};
pub use name::{Name, NameError};
pub use store::{ContentStore, StoredObject};
pub use symbol::{Interner, Symbol};
pub use tree::NameTree;
pub use utility::{greedy_select, marginal_utility, total_utility, UtilityItem};

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::criticality::{Criticality, CriticalityMap};
    pub use crate::fib::{Fib, Interest, Pit};
    pub use crate::name::{Name, NameError};
    pub use crate::store::{ContentStore, StoredObject};
    pub use crate::tree::NameTree;
    pub use crate::utility::{greedy_select, total_utility, UtilityItem};
}

//! Hierarchical content names (§V-A).
//!
//! "In designing hierarchical name spaces (where names are like UNIX paths),
//! of specific interest is to develop naming schemes where more similar
//! objects have names that share longer prefixes." A [`Name`] is a sequence
//! of path components, e.g. `/city/marketplace/south/noon/camera1`.
//!
//! Components are interned [`Symbol`]s (see [`crate::symbol`]), so the hot
//! operations — component equality, [`Name::shared_prefix_len`],
//! [`Name::starts_with`], trie descent — are integer compares; strings are
//! resolved back out only at I/O boundaries ([`Name::fmt`][core::fmt::Display],
//! [`Symbol::as_str`], error messages).

use crate::symbol::{intern, Symbol};
use core::cmp::Ordering;
use core::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// A hierarchical content name.
///
/// Ordering is **lexicographic over resolved component strings** — exactly
/// the order the pre-interning `Arc<[String]>` representation had — so
/// every `BTreeMap<Name, _>` iterates, and every deterministic tie-break
/// resolves, byte-identically to earlier releases. Comparison still runs at
/// integer speed on shared prefixes: equal symbols short-circuit without
/// touching the interner, and only the first *differing* component pair is
/// resolved.
///
/// # Examples
///
/// ```
/// use dde_naming::name::Name;
///
/// let a: Name = "/city/marketplace/south/noon/camera1".parse()?;
/// let b: Name = "/city/marketplace/south/noon/camera2".parse()?;
/// assert_eq!(a.shared_prefix_len(&b), 4);
/// assert!(a.starts_with(&"/city/marketplace".parse()?));
/// # Ok::<(), dde_naming::name::NameError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Name {
    components: Arc<[Symbol]>,
}

fn validate(component: &str) -> Result<(), NameError> {
    if component.is_empty() || component.contains('/') {
        return Err(NameError {
            message: format!("invalid name component: {component:?}"),
        });
    }
    Ok(())
}

impl Name {
    /// The root name `/` (zero components).
    pub fn root() -> Name {
        Name::default()
    }

    /// Builds a name from components.
    ///
    /// # Errors
    ///
    /// Returns [`NameError`] if any component is empty or contains `/`.
    ///
    /// ```
    /// use dde_naming::name::Name;
    ///
    /// let name = Name::from_components(["city", "cam1"])?;
    /// assert_eq!(name.to_string(), "/city/cam1");
    /// assert!(Name::from_components(["bad/slash"]).is_err());
    /// # Ok::<(), dde_naming::name::NameError>(())
    /// ```
    pub fn from_components<I, S>(components: I) -> Result<Name, NameError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut symbols = Vec::new();
        for c in components {
            let c = c.as_ref();
            validate(c)?;
            symbols.push(intern(c));
        }
        Ok(Name {
            components: symbols.into(),
        })
    }

    /// The interned components, in order.
    pub fn components(&self) -> &[Symbol] {
        &self.components
    }

    /// The component strings, in order, resolved through the interner —
    /// an I/O-boundary convenience; hot paths should compare [`Symbol`]s.
    pub fn component_strs(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.components.iter().map(|s| s.as_str())
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether this is the root name.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Number of leading components shared with `other` — the paper's
    /// similarity measure: "distances between them, such as the length of
    /// the shared name prefix". Integer compares only; the interner is
    /// never consulted.
    pub fn shared_prefix_len(&self, other: &Name) -> usize {
        self.components
            .iter()
            .zip(other.components.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// Shared-prefix similarity normalized to `[0, 1]`:
    /// `shared / max(len_a, len_b)`. Two identical names score 1; disjoint
    /// names score 0. The root is similar to nothing (score 0) except
    /// itself (scored 1 by convention).
    pub fn similarity(&self, other: &Name) -> f64 {
        let denom = self.len().max(other.len());
        if denom == 0 {
            return 1.0;
        }
        self.shared_prefix_len(other) as f64 / denom as f64
    }

    /// Whether `prefix` is a (non-strict) prefix of this name.
    pub fn starts_with(&self, prefix: &Name) -> bool {
        prefix.len() <= self.len() && self.components[..prefix.len()] == prefix.components[..]
    }

    /// The name extended by one component.
    ///
    /// # Errors
    ///
    /// Returns [`NameError`] if `component` is empty or contains `/`.
    ///
    /// ```
    /// use dde_naming::name::Name;
    ///
    /// let base: Name = "/city".parse()?;
    /// assert_eq!(base.child("cam1")?.to_string(), "/city/cam1");
    /// assert!(base.child("a/b").is_err());
    /// # Ok::<(), dde_naming::name::NameError>(())
    /// ```
    pub fn child(&self, component: impl AsRef<str>) -> Result<Name, NameError> {
        let component = component.as_ref();
        validate(component)?;
        Ok(self.child_symbol(intern(component)))
    }

    /// The name extended by one already-interned component — infallible,
    /// for trie traversal that rebuilds names from stored symbols.
    pub(crate) fn child_symbol(&self, component: Symbol) -> Name {
        let mut v: Vec<Symbol> = self.components.to_vec();
        v.push(component);
        Name {
            components: v.into(),
        }
    }

    /// The parent name, or `None` at the root.
    pub fn parent(&self) -> Option<Name> {
        if self.is_empty() {
            return None;
        }
        Some(Name {
            components: self.components[..self.len() - 1].to_vec().into(),
        })
    }

    /// The first `n` components as a name.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    #[must_use]
    pub fn prefix(&self, n: usize) -> Name {
        assert!(n <= self.len(), "prefix length out of range");
        Name {
            components: self.components[..n].to_vec().into(),
        }
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    /// Lexicographic over resolved component strings (see the type-level
    /// docs). Symbol-equal components short-circuit as an integer compare;
    /// only the first differing pair resolves through the interner.
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.components.iter().zip(other.components.iter()) {
            if a == b {
                continue;
            }
            // The interner is injective, so differing symbols resolve to
            // differing strings and this never returns `Equal` here.
            return crate::symbol::cmp_resolved(*a, *b);
        }
        self.components.len().cmp(&other.components.len())
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return write!(f, "/");
        }
        for c in self.components.iter() {
            write!(f, "/{}", c.as_str())?;
        }
        Ok(())
    }
}

/// Error from parsing or building a [`Name`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid name: {}", self.message)
    }
}

impl std::error::Error for NameError {}

impl FromStr for Name {
    type Err = NameError;

    /// Parses `/a/b/c` (leading slash required; `/` alone is the root;
    /// trailing slash tolerated). Each component is interned on the way in.
    fn from_str(s: &str) -> Result<Name, NameError> {
        let Some(rest) = s.strip_prefix('/') else {
            return Err(NameError {
                message: format!("must start with '/': {s:?}"),
            });
        };
        let rest = rest.strip_suffix('/').unwrap_or(rest);
        if rest.is_empty() {
            return Ok(Name::root());
        }
        let mut symbols = Vec::new();
        for c in rest.split('/') {
            if c.is_empty() {
                return Err(NameError {
                    message: format!("empty component in {s:?}"),
                });
            }
            symbols.push(intern(c));
        }
        Ok(Name {
            components: symbols.into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["/", "/a", "/city/market/south", "/a/b/c/d/e"] {
            let name = n(s);
            assert_eq!(name.to_string(), s);
            assert_eq!(name.to_string().parse::<Name>().unwrap(), name);
        }
        // Trailing slash tolerated on parse, normalized on display.
        assert_eq!(n("/a/b/"), n("/a/b"));
    }

    #[test]
    fn parse_errors() {
        assert!("a/b".parse::<Name>().is_err());
        assert!("".parse::<Name>().is_err());
        assert!("/a//b".parse::<Name>().is_err());
        let e = "x".parse::<Name>().unwrap_err();
        assert!(e.to_string().contains("must start"));
    }

    #[test]
    fn shared_prefix_examples() {
        // The paper's camera substitution example.
        let c1 = n("/city/marketplace/south/noon/camera1");
        let c2 = n("/city/marketplace/south/noon/camera2");
        let north = n("/city/marketplace/north/noon/camera1");
        assert_eq!(c1.shared_prefix_len(&c2), 4);
        assert_eq!(c1.shared_prefix_len(&north), 2);
        assert_eq!(c1.shared_prefix_len(&c1), 5);
        assert_eq!(c1.shared_prefix_len(&Name::root()), 0);
    }

    #[test]
    fn similarity_normalized() {
        let c1 = n("/a/b/c/d");
        let c2 = n("/a/b/x/y");
        assert!((c1.similarity(&c2) - 0.5).abs() < 1e-12);
        assert_eq!(c1.similarity(&c1), 1.0);
        assert_eq!(Name::root().similarity(&Name::root()), 1.0);
        assert_eq!(c1.similarity(&Name::root()), 0.0);
    }

    #[test]
    fn starts_with_and_prefix() {
        let full = n("/a/b/c");
        assert!(full.starts_with(&n("/a")));
        assert!(full.starts_with(&n("/a/b/c")));
        assert!(full.starts_with(&Name::root()));
        assert!(!full.starts_with(&n("/a/x")));
        assert!(!n("/a").starts_with(&full));
        assert_eq!(full.prefix(2), n("/a/b"));
        assert_eq!(full.prefix(0), Name::root());
    }

    #[test]
    fn child_and_parent() {
        let base = n("/city");
        let cam = base.child("cam1").unwrap();
        assert_eq!(cam, n("/city/cam1"));
        assert_eq!(cam.parent().unwrap(), base);
        assert_eq!(base.parent().unwrap(), Name::root());
        assert!(Name::root().parent().is_none());
    }

    #[test]
    fn child_rejects_invalid_components() {
        assert!(Name::root().child("a/b").is_err());
        assert!(Name::root().child("").is_err());
        let e = Name::root().child("a/b").unwrap_err();
        assert!(e.to_string().contains("invalid name component"));
    }

    #[test]
    fn from_components() {
        let name = Name::from_components(["a", "b"]).unwrap();
        assert_eq!(name, n("/a/b"));
        assert_eq!(name.component_strs().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(name.components().len(), 2);
        assert!(Name::from_components(["ok", "bad/slash"]).is_err());
        assert!(Name::from_components(["", "b"]).is_err());
    }

    #[test]
    fn ordering_is_lexicographic_not_id_order() {
        // Intern in anti-lexicographic order: the later-interned string
        // must still sort first, because Name order resolves strings.
        let z = n("/ord-test-zz/x");
        let a = n("/ord-test-aa/x");
        assert!(a < z, "lexicographic order must be independent of id order");
        let mut v = vec![z.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![a, z]);
        // Prefix sorts before its extensions.
        assert!(n("/a") < n("/a/b"));
        assert!(Name::root() < n("/a"));
    }

    proptest! {
        /// similarity is symmetric and bounded.
        #[test]
        fn similarity_symmetric(
            a in prop::collection::vec("[a-c]{1,2}", 0..5),
            b in prop::collection::vec("[a-c]{1,2}", 0..5),
        ) {
            let na = Name::from_components(a).unwrap();
            let nb = Name::from_components(b).unwrap();
            prop_assert!((na.similarity(&nb) - nb.similarity(&na)).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&na.similarity(&nb)));
        }

        /// Parsing the display form is the identity.
        #[test]
        fn display_parse_identity(a in prop::collection::vec("[a-z0-9_.-]{1,6}", 0..6)) {
            let name = Name::from_components(a).unwrap();
            prop_assert_eq!(name.to_string().parse::<Name>().unwrap(), name);
        }

        /// parse → intern → as_str round-trips: every component symbol
        /// resolves to exactly the substring it was parsed from, and the
        /// display form reproduces the input byte-for-byte.
        #[test]
        fn parse_intern_as_str_round_trip(
            comps in prop::collection::vec("[a-zA-Z0-9_.-]{1,12}", 1..6),
        ) {
            let text = format!("/{}", comps.join("/"));
            let name: Name = text.parse().unwrap();
            prop_assert_eq!(name.to_string(), text);
            let resolved: Vec<&str> = name.component_strs().collect();
            prop_assert_eq!(resolved, comps.iter().map(String::as_str).collect::<Vec<_>>());
        }

        /// Name order equals lexicographic order over component strings —
        /// the pre-interning representation's order, which keeps every
        /// BTreeMap<Name, _> iteration byte-compatible.
        #[test]
        fn order_matches_string_order(
            a in prop::collection::vec("[a-d]{1,3}", 0..5),
            b in prop::collection::vec("[a-d]{1,3}", 0..5),
        ) {
            let na = Name::from_components(a.clone()).unwrap();
            let nb = Name::from_components(b.clone()).unwrap();
            prop_assert_eq!(na.cmp(&nb), a.cmp(&b));
        }

        /// shared_prefix_len is a valid ultrametric-ish similarity:
        /// sim(a,c) >= min(sim(a,b), sim(b,c)) in prefix length terms.
        #[test]
        fn prefix_ultrametric(
            a in prop::collection::vec("[ab]{1}", 0..5),
            b in prop::collection::vec("[ab]{1}", 0..5),
            c in prop::collection::vec("[ab]{1}", 0..5),
        ) {
            let (na, nb, nc) = (
                Name::from_components(a).unwrap(),
                Name::from_components(b).unwrap(),
                Name::from_components(c).unwrap(),
            );
            let ab = na.shared_prefix_len(&nb);
            let bc = nb.shared_prefix_len(&nc);
            let ac = na.shared_prefix_len(&nc);
            prop_assert!(ac >= ab.min(bc));
        }
    }
}

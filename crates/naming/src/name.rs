//! Hierarchical content names (§V-A).
//!
//! "In designing hierarchical name spaces (where names are like UNIX paths),
//! of specific interest is to develop naming schemes where more similar
//! objects have names that share longer prefixes." A [`Name`] is a sequence
//! of path components, e.g. `/city/marketplace/south/noon/camera1`.

use core::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// A hierarchical content name.
///
/// # Examples
///
/// ```
/// use dde_naming::name::Name;
///
/// let a: Name = "/city/marketplace/south/noon/camera1".parse()?;
/// let b: Name = "/city/marketplace/south/noon/camera2".parse()?;
/// assert_eq!(a.shared_prefix_len(&b), 4);
/// assert!(a.starts_with(&"/city/marketplace".parse()?));
/// # Ok::<(), dde_naming::name::NameError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Name {
    components: Arc<[String]>,
}

impl Name {
    /// The root name `/` (zero components).
    pub fn root() -> Name {
        Name::default()
    }

    /// Builds a name from components.
    ///
    /// # Panics
    ///
    /// Panics if any component is empty or contains `/`.
    pub fn from_components<I, S>(components: I) -> Name
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let components: Vec<String> = components.into_iter().map(Into::into).collect();
        for c in &components {
            assert!(
                !c.is_empty() && !c.contains('/'),
                "invalid name component: {c:?}"
            );
        }
        Name {
            components: components.into(),
        }
    }

    /// The components, in order.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether this is the root name.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Number of leading components shared with `other` — the paper's
    /// similarity measure: "distances between them, such as the length of
    /// the shared name prefix".
    pub fn shared_prefix_len(&self, other: &Name) -> usize {
        self.components
            .iter()
            .zip(other.components.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// Shared-prefix similarity normalized to `[0, 1]`:
    /// `shared / max(len_a, len_b)`. Two identical names score 1; disjoint
    /// names score 0. The root is similar to nothing (score 0) except
    /// itself (scored 1 by convention).
    pub fn similarity(&self, other: &Name) -> f64 {
        let denom = self.len().max(other.len());
        if denom == 0 {
            return 1.0;
        }
        self.shared_prefix_len(other) as f64 / denom as f64
    }

    /// Whether `prefix` is a (non-strict) prefix of this name.
    pub fn starts_with(&self, prefix: &Name) -> bool {
        prefix.len() <= self.len() && self.components[..prefix.len()] == prefix.components[..]
    }

    /// The name extended by one component.
    ///
    /// # Panics
    ///
    /// Panics if `component` is empty or contains `/`.
    #[must_use]
    pub fn child(&self, component: impl Into<String>) -> Name {
        let component = component.into();
        assert!(
            !component.is_empty() && !component.contains('/'),
            "invalid name component: {component:?}"
        );
        let mut v: Vec<String> = self.components.to_vec();
        v.push(component);
        Name {
            components: v.into(),
        }
    }

    /// The parent name, or `None` at the root.
    pub fn parent(&self) -> Option<Name> {
        if self.is_empty() {
            return None;
        }
        Some(Name {
            components: self.components[..self.len() - 1].to_vec().into(),
        })
    }

    /// The first `n` components as a name.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    #[must_use]
    pub fn prefix(&self, n: usize) -> Name {
        assert!(n <= self.len(), "prefix length out of range");
        Name {
            components: self.components[..n].to_vec().into(),
        }
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return write!(f, "/");
        }
        for c in self.components.iter() {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

/// Error from parsing a [`Name`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid name: {}", self.message)
    }
}

impl std::error::Error for NameError {}

impl FromStr for Name {
    type Err = NameError;

    /// Parses `/a/b/c` (leading slash required; `/` alone is the root;
    /// trailing slash tolerated).
    fn from_str(s: &str) -> Result<Name, NameError> {
        let Some(rest) = s.strip_prefix('/') else {
            return Err(NameError {
                message: format!("must start with '/': {s:?}"),
            });
        };
        let rest = rest.strip_suffix('/').unwrap_or(rest);
        if rest.is_empty() {
            return Ok(Name::root());
        }
        let components: Vec<String> = rest.split('/').map(str::to_string).collect();
        if components.iter().any(String::is_empty) {
            return Err(NameError {
                message: format!("empty component in {s:?}"),
            });
        }
        Ok(Name {
            components: components.into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["/", "/a", "/city/market/south", "/a/b/c/d/e"] {
            let name = n(s);
            assert_eq!(name.to_string(), s);
            assert_eq!(name.to_string().parse::<Name>().unwrap(), name);
        }
        // Trailing slash tolerated on parse, normalized on display.
        assert_eq!(n("/a/b/"), n("/a/b"));
    }

    #[test]
    fn parse_errors() {
        assert!("a/b".parse::<Name>().is_err());
        assert!("".parse::<Name>().is_err());
        assert!("/a//b".parse::<Name>().is_err());
        let e = "x".parse::<Name>().unwrap_err();
        assert!(e.to_string().contains("must start"));
    }

    #[test]
    fn shared_prefix_examples() {
        // The paper's camera substitution example.
        let c1 = n("/city/marketplace/south/noon/camera1");
        let c2 = n("/city/marketplace/south/noon/camera2");
        let north = n("/city/marketplace/north/noon/camera1");
        assert_eq!(c1.shared_prefix_len(&c2), 4);
        assert_eq!(c1.shared_prefix_len(&north), 2);
        assert_eq!(c1.shared_prefix_len(&c1), 5);
        assert_eq!(c1.shared_prefix_len(&Name::root()), 0);
    }

    #[test]
    fn similarity_normalized() {
        let c1 = n("/a/b/c/d");
        let c2 = n("/a/b/x/y");
        assert!((c1.similarity(&c2) - 0.5).abs() < 1e-12);
        assert_eq!(c1.similarity(&c1), 1.0);
        assert_eq!(Name::root().similarity(&Name::root()), 1.0);
        assert_eq!(c1.similarity(&Name::root()), 0.0);
    }

    #[test]
    fn starts_with_and_prefix() {
        let full = n("/a/b/c");
        assert!(full.starts_with(&n("/a")));
        assert!(full.starts_with(&n("/a/b/c")));
        assert!(full.starts_with(&Name::root()));
        assert!(!full.starts_with(&n("/a/x")));
        assert!(!n("/a").starts_with(&full));
        assert_eq!(full.prefix(2), n("/a/b"));
        assert_eq!(full.prefix(0), Name::root());
    }

    #[test]
    fn child_and_parent() {
        let base = n("/city");
        let cam = base.child("cam1");
        assert_eq!(cam, n("/city/cam1"));
        assert_eq!(cam.parent().unwrap(), base);
        assert_eq!(base.parent().unwrap(), Name::root());
        assert!(Name::root().parent().is_none());
    }

    #[test]
    #[should_panic(expected = "invalid name component")]
    fn child_rejects_slash() {
        let _ = Name::root().child("a/b");
    }

    #[test]
    fn from_components() {
        let name = Name::from_components(["a", "b"]);
        assert_eq!(name, n("/a/b"));
        assert_eq!(name.components(), &["a".to_string(), "b".to_string()]);
    }

    proptest! {
        /// similarity is symmetric and bounded.
        #[test]
        fn similarity_symmetric(
            a in prop::collection::vec("[a-c]{1,2}", 0..5),
            b in prop::collection::vec("[a-c]{1,2}", 0..5),
        ) {
            let na = Name::from_components(a);
            let nb = Name::from_components(b);
            prop_assert!((na.similarity(&nb) - nb.similarity(&na)).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&na.similarity(&nb)));
        }

        /// Parsing the display form is the identity.
        #[test]
        fn display_parse_identity(a in prop::collection::vec("[a-z0-9_.-]{1,6}", 0..6)) {
            let name = Name::from_components(a);
            prop_assert_eq!(name.to_string().parse::<Name>().unwrap(), name);
        }

        /// shared_prefix_len is a valid ultrametric-ish similarity:
        /// sim(a,c) >= min(sim(a,b), sim(b,c)) in prefix length terms.
        #[test]
        fn prefix_ultrametric(
            a in prop::collection::vec("[ab]{1}", 0..5),
            b in prop::collection::vec("[ab]{1}", 0..5),
            c in prop::collection::vec("[ab]{1}", 0..5),
        ) {
            let (na, nb, nc) = (
                Name::from_components(a),
                Name::from_components(b),
                Name::from_components(c),
            );
            let ab = na.shared_prefix_len(&nb);
            let bc = nb.shared_prefix_len(&nc);
            let ac = na.shared_prefix_len(&nc);
            prop_assert!(ac >= ab.min(bc));
        }
    }
}

//! Sub-additive information utility and utility-maximizing triage (§V-B).
//!
//! "Sending a picture of a bridge that shows that it was damaged in a recent
//! earthquake offers important information the first time. However, sending
//! 10 pictures of that same bridge in the same condition does not offer
//! 10-times more information." Delivered utility is *sub-additive*, and
//! shared-name-prefix length proxies redundancy: the marginal utility of an
//! item is its base utility discounted by its maximum similarity to any
//! already-delivered item.
//!
//! `U(S ∪ {x}) − U(S) = u(x) · (1 − max_{y ∈ S} sim(x, y))`
//!
//! which makes `U` monotone and submodular over name sets (proved in the
//! property tests), so greedy selection carries the classic `1 − 1/e`
//! guarantee.

use crate::name::Name;

/// An item competing for a transmission/caching budget.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilityItem {
    /// The item's content name (similarity domain).
    pub name: Name,
    /// Intrinsic utility of delivering this item first.
    pub base_utility: f64,
    /// Cost against the budget (e.g. bytes).
    pub cost: u64,
}

impl UtilityItem {
    /// Creates an item.
    ///
    /// # Panics
    ///
    /// Panics if `base_utility` is negative or not finite.
    pub fn new(name: Name, base_utility: f64, cost: u64) -> UtilityItem {
        assert!(
            base_utility.is_finite() && base_utility >= 0.0,
            "utility must be finite and non-negative"
        );
        UtilityItem {
            name,
            base_utility,
            cost,
        }
    }
}

/// The sub-additive utility of delivering `selected` (in any order):
/// items are accounted greedily in the given order, each discounted by its
/// max similarity to previously counted items.
pub fn total_utility(selected: &[UtilityItem]) -> f64 {
    let mut total = 0.0;
    for (i, item) in selected.iter().enumerate() {
        total += marginal_utility(item, &selected[..i]);
    }
    total
}

/// The marginal utility of adding `item` given `already` delivered items.
pub fn marginal_utility(item: &UtilityItem, already: &[UtilityItem]) -> f64 {
    let max_sim = already
        .iter()
        .map(|y| item.name.similarity(&y.name))
        .fold(0.0, f64::max);
    item.base_utility * (1.0 - max_sim)
}

/// Greedy budgeted utility maximization: repeatedly picks the item with the
/// highest marginal utility per unit cost that still fits the remaining
/// budget. Returns indices into `items` in selection order.
///
/// This is the drop/forward triage a bottleneck link runs under overload
/// ("the network can refrain from forwarding partially redundant objects
/// across bottlenecks").
pub fn greedy_select(items: &[UtilityItem], budget: u64) -> Vec<usize> {
    let mut chosen: Vec<usize> = Vec::new();
    let mut chosen_items: Vec<UtilityItem> = Vec::new();
    let mut remaining = budget;
    let mut used = vec![false; items.len()];
    loop {
        let mut best: Option<(usize, f64)> = None;
        for (i, item) in items.iter().enumerate() {
            if used[i] || item.cost > remaining {
                continue;
            }
            let marginal = marginal_utility(item, &chosen_items);
            let density = if item.cost == 0 {
                f64::INFINITY
            } else {
                marginal / item.cost as f64
            };
            let better = match best {
                None => true,
                Some((_, b)) => density > b + 1e-12,
            };
            if better && marginal > 0.0 {
                best = Some((i, density));
            }
        }
        let Some((i, _)) = best else { break };
        used[i] = true;
        remaining -= items[i].cost;
        chosen.push(i);
        chosen_items.push(items[i].clone());
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn item(name: &str, utility: f64, cost: u64) -> UtilityItem {
        UtilityItem::new(name.parse().unwrap(), utility, cost)
    }

    #[test]
    fn duplicate_pictures_add_nothing() {
        // The bridge example: the second identical name is worthless.
        let bridge = item("/city/bridge/cam1", 10.0, 100);
        assert_eq!(total_utility(&[bridge.clone(), bridge.clone()]), 10.0);
    }

    #[test]
    fn dissimilar_items_add_fully() {
        let a = item("/city/bridge", 5.0, 1);
        let b = item("/rural/farm", 7.0, 1);
        assert_eq!(total_utility(&[a, b]), 12.0);
    }

    #[test]
    fn partial_overlap_discounts() {
        // 3 of 4 components shared → similarity 0.75 → second adds 25%.
        let a = item("/c/m/s/cam1", 8.0, 1);
        let b = item("/c/m/s/cam2", 8.0, 1);
        assert!((total_utility(&[a, b]) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_prefers_diverse_content() {
        // Budget fits two items; picking the two near-duplicates wastes it.
        let items = vec![
            item("/c/m/s/cam1", 10.0, 100),
            item("/c/m/s/cam2", 10.0, 100), // near-duplicate of cam1
            item("/c/harbor/cam", 6.0, 100),
        ];
        let sel = greedy_select(&items, 200);
        assert_eq!(sel, vec![0, 2], "should pick cam1 + harbor, not both cams");
    }

    #[test]
    fn greedy_respects_budget() {
        let items = vec![
            item("/a", 10.0, 150),
            item("/b", 9.0, 100),
            item("/c", 1.0, 50),
        ];
        let sel = greedy_select(&items, 160);
        let cost: u64 = sel.iter().map(|&i| items[i].cost).sum();
        assert!(cost <= 160);
        // Density order: /b (0.09) > /a (0.066) > /c (0.02): picks /b then /c.
        assert_eq!(sel, vec![1, 2]);
    }

    #[test]
    fn greedy_skips_zero_marginal() {
        let items = vec![item("/x", 5.0, 10), item("/x", 5.0, 10)];
        let sel = greedy_select(&items, 100);
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let items = vec![item("/a", 5.0, 1)];
        assert!(greedy_select(&items, 0).is_empty());
        assert!(greedy_select(&[], 100).is_empty());
    }

    #[test]
    #[should_panic(expected = "utility must be finite")]
    fn negative_utility_rejected() {
        let _ = item("/a", -1.0, 1);
    }

    fn arb_items() -> impl Strategy<Value = Vec<UtilityItem>> {
        prop::collection::vec(
            (
                prop::collection::vec("[ab]{1}", 1..4),
                0.0f64..10.0,
                1u64..10,
            ),
            1..8,
        )
        .prop_map(|specs| {
            specs
                .into_iter()
                .map(|(comps, u, c)| {
                    UtilityItem::new(Name::from_components(comps).expect("valid"), u, c)
                })
                .collect()
        })
    }

    proptest! {
        /// Utility is sub-additive: U(A ++ B) <= U(A) + U(B).
        #[test]
        fn subadditive(items in arb_items(), split in 0usize..8) {
            let k = split.min(items.len());
            let (a, b) = items.split_at(k);
            let whole = total_utility(&items);
            prop_assert!(whole <= total_utility(a) + total_utility(b) + 1e-9);
        }

        /// Utility is monotone: adding an item never decreases the total.
        #[test]
        fn monotone(items in arb_items()) {
            for k in 0..items.len() {
                prop_assert!(
                    total_utility(&items[..=k]) + 1e-12 >= total_utility(&items[..k])
                );
            }
        }

        /// Marginal utility diminishes as the delivered set grows
        /// (submodularity along a chain).
        #[test]
        fn diminishing_marginals(items in arb_items(), probe in 0usize..8) {
            let Some(x) = items.get(probe.min(items.len() - 1)).cloned() else {
                return Ok(());
            };
            for k in 0..items.len() {
                let small = marginal_utility(&x, &items[..k]);
                for k2 in k..items.len() {
                    let big = marginal_utility(&x, &items[..k2]);
                    prop_assert!(big <= small + 1e-9);
                }
            }
        }

        /// Greedy never exceeds the budget and picks distinct items.
        #[test]
        fn greedy_valid(items in arb_items(), budget in 0u64..40) {
            let sel = greedy_select(&items, budget);
            let cost: u64 = sel.iter().map(|&i| items[i].cost).sum();
            prop_assert!(cost <= budget);
            let mut sorted = sel.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), sel.len());
        }
    }
}

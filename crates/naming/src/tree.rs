//! A name trie supporting exact, longest-prefix, and approximate lookup.
//!
//! This is the "hierarchical semantic indexing" structure of §V-A: routers
//! and caches index content by name; when an exact match is unavailable,
//! "the network may automatically substitute it with, say,
//! `/city/marketplace/south/noon/camera2`" — the entry sharing the longest
//! prefix with the request.

use crate::name::Name;
use crate::symbol::Symbol;
use std::collections::BTreeMap;

/// A trie mapping [`Name`]s to values.
///
/// Children are keyed by interned [`Symbol`] — descent (insert, exact get,
/// longest-prefix match) is pure integer comparison, never touching
/// component strings. Symbol order is interning order, not lexicographic
/// order, so the ordered surfaces ([`NameTree::iter`],
/// [`NameTree::iter_prefix`], [`NameTree::closest`]) re-establish *name*
/// order explicitly before returning; nothing user-visible depends on id
/// assignment.
#[derive(Debug, Clone)]
pub struct NameTree<T> {
    root: TrieNode<T>,
    len: usize,
}

#[derive(Debug, Clone)]
struct TrieNode<T> {
    value: Option<T>,
    children: BTreeMap<Symbol, TrieNode<T>>,
}

impl<T> Default for TrieNode<T> {
    fn default() -> Self {
        TrieNode {
            value: None,
            children: BTreeMap::new(),
        }
    }
}

impl<T> Default for NameTree<T> {
    fn default() -> Self {
        NameTree {
            root: TrieNode::default(),
            len: 0,
        }
    }
}

impl<T> NameTree<T> {
    /// Creates an empty tree.
    pub fn new() -> NameTree<T> {
        NameTree::default()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` at `name`, returning the previous value if any.
    pub fn insert(&mut self, name: &Name, value: T) -> Option<T> {
        let mut node = &mut self.root;
        for c in name.components() {
            node = node.children.entry(*c).or_default();
        }
        let prev = node.value.replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Removes and returns the value at exactly `name`.
    pub fn remove(&mut self, name: &Name) -> Option<T> {
        fn go<T>(node: &mut TrieNode<T>, comps: &[Symbol]) -> (Option<T>, bool) {
            match comps.split_first() {
                None => {
                    let v = node.value.take();
                    let prunable = node.children.is_empty();
                    (v, prunable)
                }
                Some((head, rest)) => {
                    let Some(child) = node.children.get_mut(head) else {
                        return (None, false);
                    };
                    let (v, prune_child) = go(child, rest);
                    if prune_child && child.value.is_none() {
                        node.children.remove(head);
                    }
                    (v, node.children.is_empty() && node.value.is_none())
                }
            }
        }
        let (v, _) = go(&mut self.root, name.components());
        if v.is_some() {
            self.len -= 1;
        }
        v
    }

    /// The value stored at exactly `name`.
    pub fn get(&self, name: &Name) -> Option<&T> {
        let mut node = &self.root;
        for c in name.components() {
            node = node.children.get(c)?;
        }
        node.value.as_ref()
    }

    /// Mutable access to the value stored at exactly `name`.
    pub fn get_mut(&mut self, name: &Name) -> Option<&mut T> {
        let mut node = &mut self.root;
        for c in name.components() {
            node = node.children.get_mut(c)?;
        }
        node.value.as_mut()
    }

    /// The entry whose name is the longest stored *prefix* of `name`
    /// (NDN-style FIB lookup). Returns `(prefix, value)`.
    pub fn longest_prefix(&self, name: &Name) -> Option<(Name, &T)> {
        let mut node = &self.root;
        let mut best: Option<(usize, &T)> = node.value.as_ref().map(|v| (0, v));
        for (depth, c) in name.components().iter().enumerate() {
            match node.children.get(c) {
                Some(child) => {
                    node = child;
                    if let Some(v) = &node.value {
                        best = Some((depth + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(depth, v)| (name.prefix(depth), v))
    }

    /// Iterates over all entries under `prefix` (inclusive), in name order.
    pub fn iter_prefix<'a>(
        &'a self,
        prefix: &Name,
    ) -> Box<dyn Iterator<Item = (Name, &'a T)> + 'a> {
        let mut node = &self.root;
        for c in prefix.components() {
            match node.children.get(c) {
                Some(child) => node = child,
                None => return Box::new(std::iter::empty()),
            }
        }
        let mut out: Vec<(Name, &T)> = Vec::new();
        collect(node, prefix.clone(), &mut out);
        // Children are stored in symbol-id order; the promised iteration
        // order is *name* order, so sort before handing out.
        out.sort_by(|(a, _), (b, _)| a.cmp(b));
        Box::new(out.into_iter())
    }

    /// Iterates over all entries, in name order.
    pub fn iter(&self) -> impl Iterator<Item = (Name, &T)> + '_ {
        self.iter_prefix(&Name::root())
    }

    /// Approximate lookup (§V-A): the stored entry sharing the longest name
    /// prefix with `name`, requiring at least `min_shared` shared leading
    /// components. Among equally-similar entries the name-order-first wins
    /// (deterministic). An exact match trivially wins.
    ///
    /// Returns `(stored name, shared prefix length, value)`.
    pub fn closest(&self, name: &Name, min_shared: usize) -> Option<(Name, usize, &T)> {
        // Descend as deep as the trie matches `name`, remembering the
        // deepest matching node; any stored entry below that node shares
        // exactly that many leading components (or more if on the path).
        let mut node = &self.root;
        let mut depth = 0;
        let mut path_nodes: Vec<&TrieNode<T>> = vec![node];
        for c in name.components() {
            match node.children.get(c) {
                Some(child) => {
                    node = child;
                    depth += 1;
                    path_nodes.push(node);
                }
                None => break,
            }
        }
        // Walk back from the deepest matched node; the first node with any
        // stored descendant yields the best shared-prefix length.
        for d in (0..=depth).rev() {
            if d < min_shared {
                break;
            }
            let candidate_root = path_nodes[d];
            // Prefer an exact-path value at depth d... any entry under this
            // subtree shares >= d components; entries deeper on the matched
            // path were already considered at larger d.
            let mut out: Vec<(Name, &T)> = Vec::new();
            collect(candidate_root, name.prefix(d), &mut out);
            // `collect` visits children in symbol-id order; the documented
            // tie-break is name-order-first, so take the minimum by name.
            if let Some((stored, v)) = out.into_iter().min_by(|(a, _), (b, _)| a.cmp(b)) {
                let shared = stored.shared_prefix_len(name);
                return Some((stored, shared, v));
            }
        }
        None
    }
}

fn collect<'a, T>(node: &'a TrieNode<T>, name: Name, out: &mut Vec<(Name, &'a T)>) {
    if let Some(v) = &node.value {
        out.push((name.clone(), v));
    }
    for (comp, child) in &node.children {
        collect(child, name.child_symbol(*comp), out);
    }
}

impl<T> FromIterator<(Name, T)> for NameTree<T> {
    fn from_iter<I: IntoIterator<Item = (Name, T)>>(iter: I) -> Self {
        let mut t = NameTree::new();
        for (n, v) in iter {
            t.insert(&n, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut t = NameTree::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(&n("/a/b"), 1), None);
        assert_eq!(t.insert(&n("/a/b"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&n("/a/b")), Some(&2));
        assert_eq!(t.get(&n("/a")), None);
        *t.get_mut(&n("/a/b")).unwrap() = 7;
        assert_eq!(t.remove(&n("/a/b")), Some(7));
        assert_eq!(t.remove(&n("/a/b")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn remove_prunes_empty_branches() {
        let mut t = NameTree::new();
        t.insert(&n("/a/b/c"), 1);
        t.insert(&n("/a"), 2);
        t.remove(&n("/a/b/c"));
        // /a must survive.
        assert_eq!(t.get(&n("/a")), Some(&2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.iter().count(), 1);
    }

    #[test]
    fn longest_prefix_matching() {
        let mut t = NameTree::new();
        t.insert(&n("/city"), "coarse");
        t.insert(&n("/city/market/south"), "fine");
        let (p, v) = t
            .longest_prefix(&n("/city/market/south/noon/cam1"))
            .unwrap();
        assert_eq!(p, n("/city/market/south"));
        assert_eq!(*v, "fine");
        let (p, v) = t.longest_prefix(&n("/city/port")).unwrap();
        assert_eq!(p, n("/city"));
        assert_eq!(*v, "coarse");
        assert!(t.longest_prefix(&n("/rural")).is_none());
    }

    #[test]
    fn root_entry_matches_everything() {
        let mut t = NameTree::new();
        t.insert(&Name::root(), "default");
        let (p, v) = t.longest_prefix(&n("/x/y")).unwrap();
        assert_eq!(p, Name::root());
        assert_eq!(*v, "default");
    }

    #[test]
    fn iter_prefix_scopes() {
        let t: NameTree<i32> = [(n("/a/x"), 1), (n("/a/y"), 2), (n("/b/z"), 3)]
            .into_iter()
            .collect();
        let under_a: Vec<_> = t.iter_prefix(&n("/a")).map(|(name, _)| name).collect();
        assert_eq!(under_a, vec![n("/a/x"), n("/a/y")]);
        assert_eq!(t.iter().count(), 3);
        assert_eq!(t.iter_prefix(&n("/zzz")).count(), 0);
    }

    #[test]
    fn closest_substitutes_sibling_camera() {
        // The paper's example: camera1 unavailable, substitute camera2.
        let mut t = NameTree::new();
        t.insert(&n("/city/marketplace/south/noon/camera2"), "view2");
        t.insert(&n("/city/harbor/cam"), "harbor");
        let (stored, shared, v) = t
            .closest(&n("/city/marketplace/south/noon/camera1"), 2)
            .unwrap();
        assert_eq!(stored, n("/city/marketplace/south/noon/camera2"));
        assert_eq!(shared, 4);
        assert_eq!(*v, "view2");
    }

    #[test]
    fn closest_respects_min_shared() {
        let mut t = NameTree::new();
        t.insert(&n("/city/harbor/cam"), "harbor");
        // Only 1 shared component; require 2 → no substitution.
        assert!(t.closest(&n("/city/market/cam"), 2).is_none());
        assert!(t.closest(&n("/city/market/cam"), 1).is_some());
    }

    #[test]
    fn closest_prefers_exact() {
        let mut t = NameTree::new();
        t.insert(&n("/a/b"), 1);
        t.insert(&n("/a/b/c"), 2);
        let (stored, shared, v) = t.closest(&n("/a/b"), 0).unwrap();
        assert_eq!(stored, n("/a/b"));
        assert_eq!(shared, 2);
        assert_eq!(*v, 1);
    }

    #[test]
    fn closest_on_empty_tree() {
        let t: NameTree<i32> = NameTree::new();
        assert!(t.closest(&n("/a"), 0).is_none());
    }

    proptest! {
        /// closest() returns the entry maximizing shared prefix length.
        #[test]
        fn closest_maximizes_shared_prefix(
            entries in prop::collection::btree_set(
                prop::collection::vec("[ab]{1}", 1..5), 1..10),
            probe in prop::collection::vec("[ab]{1}", 1..5),
        ) {
            let tree: NameTree<usize> = entries.iter().enumerate()
                .map(|(i, comps)| (Name::from_components(comps.clone()).unwrap(), i))
                .collect();
            let probe = Name::from_components(probe).unwrap();
            let (stored, shared, _) = tree.closest(&probe, 0).unwrap();
            prop_assert_eq!(stored.shared_prefix_len(&probe), shared);
            for (name, _) in tree.iter() {
                prop_assert!(name.shared_prefix_len(&probe) <= shared,
                    "{} shares more with {} than chosen {}", name, probe, stored);
            }
        }

        /// Insert/remove round-trips keep len() consistent with iter().
        #[test]
        fn len_matches_iter(
            names in prop::collection::vec(
                prop::collection::vec("[abc]{1}", 0..4), 0..12),
        ) {
            let mut t = NameTree::new();
            for (i, comps) in names.iter().enumerate() {
                t.insert(&Name::from_components(comps.clone()).unwrap(), i);
            }
            prop_assert_eq!(t.len(), t.iter().count());
            // Remove half.
            for comps in names.iter().step_by(2) {
                t.remove(&Name::from_components(comps.clone()).unwrap());
            }
            prop_assert_eq!(t.len(), t.iter().count());
        }
    }
}

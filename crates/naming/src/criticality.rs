//! Task-criticality policies over the name space (§V-C).
//!
//! "Some parts of the name space can be considered more critical than
//! others. Objects published … in that part of the name space can thus
//! receive preferential treatment" — exemption from approximate
//! substitution, and priority for caching and forwarding.

use crate::name::Name;
use crate::tree::NameTree;
use core::fmt;

/// Criticality classes, ordered: `Routine < Elevated < Critical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Criticality {
    /// Ordinary traffic: full approximation and best-effort handling.
    #[default]
    Routine,
    /// Elevated: preferred for caching/forwarding, approximation allowed.
    Elevated,
    /// Critical: exempt from approximate substitution, highest priority.
    Critical,
}

impl Criticality {
    /// Whether approximate name substitution may serve this class.
    pub fn allows_approximation(self) -> bool {
        self != Criticality::Critical
    }

    /// Forwarding/caching priority weight (higher = more preferred).
    pub fn priority_weight(self) -> u32 {
        match self {
            Criticality::Routine => 1,
            Criticality::Elevated => 4,
            Criticality::Critical => 16,
        }
    }
}

impl fmt::Display for Criticality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Criticality::Routine => "routine",
            Criticality::Elevated => "elevated",
            Criticality::Critical => "critical",
        };
        f.write_str(s)
    }
}

/// Maps name-space regions to criticality classes via longest-prefix match.
///
/// # Examples
///
/// ```
/// use dde_naming::criticality::{Criticality, CriticalityMap};
///
/// let mut map = CriticalityMap::new();
/// map.assign(&"/city/hospital".parse()?, Criticality::Critical);
/// assert_eq!(map.classify(&"/city/hospital/cam1".parse()?), Criticality::Critical);
/// assert_eq!(map.classify(&"/city/park".parse()?), Criticality::Routine);
/// # Ok::<(), dde_naming::name::NameError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct CriticalityMap {
    prefixes: NameTree<Criticality>,
}

impl CriticalityMap {
    /// Creates a map where everything defaults to [`Criticality::Routine`].
    pub fn new() -> CriticalityMap {
        CriticalityMap::default()
    }

    /// Assigns `class` to the name-space region under `prefix`. Returns the
    /// previous class assigned to that exact prefix.
    pub fn assign(&mut self, prefix: &Name, class: Criticality) -> Option<Criticality> {
        self.prefixes.insert(prefix, class)
    }

    /// The class of `name`: the longest matching assigned prefix, else
    /// `Routine`.
    pub fn classify(&self, name: &Name) -> Criticality {
        self.prefixes
            .longest_prefix(name)
            .map(|(_, c)| *c)
            .unwrap_or_default()
    }

    /// Number of assigned prefixes.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Whether any prefixes are assigned.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn ordering_and_weights() {
        assert!(Criticality::Routine < Criticality::Critical);
        assert!(Criticality::Elevated.priority_weight() > Criticality::Routine.priority_weight());
        assert!(Criticality::Critical.priority_weight() > Criticality::Elevated.priority_weight());
        assert_eq!(Criticality::Critical.to_string(), "critical");
    }

    #[test]
    fn approximation_exemption() {
        assert!(Criticality::Routine.allows_approximation());
        assert!(Criticality::Elevated.allows_approximation());
        assert!(!Criticality::Critical.allows_approximation());
    }

    #[test]
    fn nested_prefixes_use_longest_match() {
        let mut map = CriticalityMap::new();
        map.assign(&n("/city"), Criticality::Elevated);
        map.assign(&n("/city/hospital"), Criticality::Critical);
        assert_eq!(
            map.classify(&n("/city/hospital/icu")),
            Criticality::Critical
        );
        assert_eq!(map.classify(&n("/city/park")), Criticality::Elevated);
        assert_eq!(map.classify(&n("/rural")), Criticality::Routine);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn reassignment_returns_previous() {
        let mut map = CriticalityMap::new();
        assert_eq!(map.assign(&n("/a"), Criticality::Critical), None);
        assert_eq!(
            map.assign(&n("/a"), Criticality::Routine),
            Some(Criticality::Critical)
        );
        assert_eq!(map.classify(&n("/a/b")), Criticality::Routine);
    }

    #[test]
    fn default_is_routine() {
        let map = CriticalityMap::new();
        assert!(map.is_empty());
        assert_eq!(map.classify(&n("/anything")), Criticality::Routine);
    }
}

//! Interned name components (§V-A hot path).
//!
//! Every retrieval decision flows through hierarchical names: longest-prefix
//! match in the FIB, shared-prefix approximate substitution in the content
//! store, and per-object cache keys. Comparing raw strings on those paths
//! re-walks UTF-8 for every component, so name components are *interned*: a
//! [`Symbol`] is a `u32` handle into an [`Interner`] table, making component
//! equality (the dominant operation in shared-prefix workloads) a single
//! integer compare. Strings are resolved back out only at I/O boundaries —
//! parsing, trace emission, error messages.
//!
//! # Determinism contract
//!
//! The interner is **insertion-ordered**: the *k*-th distinct component ever
//! interned receives id *k*, with no hash state anywhere (the lookup table
//! is a `BTreeMap`, satisfying dde-lint rule R1). Two same-seed runs
//! therefore intern identical component sequences and assign identical ids.
//! Crucially, no simulation output may depend on *id order* anyway: ids are
//! assigned in first-seen order, not lexicographic order, so everything
//! user-visible (trace bytes, `results_*.txt`, map iteration) is derived
//! from the resolved strings — [`crate::name::Name`]'s `Ord` compares
//! resolved components lexicographically, exactly as the pre-interning
//! representation did.

// This module is the one sanctioned home for lock/interior-mutability
// primitives in a state crate: the global interner is append-only (ids are
// handed out under the write lock in interning order, strings are 'static
// once published) and the thread-local snapshot can only lag, never
// diverge, so no observable order depends on thread timing.
#![allow(clippy::disallowed_types)]

use core::cmp::Ordering;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{OnceLock, RwLock};

/// An interned name component: a dense `u32` handle into the global
/// [`Interner`].
///
/// Equality is a single integer compare and agrees with string equality
/// (the interner is injective). The derived `Ord` is **id order** (first
/// interned sorts first), *not* lexicographic order — it exists so symbols
/// can key `BTreeMap`s on hot paths; anything user-visible must order by
/// [`Symbol::as_str`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The dense id assigned at interning time (insertion order).
    pub fn id(self) -> u32 {
        self.0
    }

    /// The component text, resolved through the global interner.
    ///
    /// Interned strings are never freed, so the returned slice is
    /// `'static`. A `Symbol` forged against a foreign [`Interner`] instance
    /// (only possible via [`Interner::intern`] on a standalone table)
    /// resolves to a fixed placeholder rather than panicking.
    pub fn as_str(self) -> &'static str {
        LOCAL_STRINGS.with(|cache| resolve_local(cache, self))
    }
}

impl core::fmt::Display for Symbol {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An insertion-ordered component table: string → [`Symbol`] and back.
///
/// The table [`Name`](crate::name::Name) uses is a single process-global
/// instance (see [`intern`]); standalone instances exist so tests can
/// verify the determinism contract (two same-seed runs produce identical
/// tables) without interference from other tests' interning.
///
/// Interned strings are leaked (`Box::leak`) so resolution can hand out
/// `&'static str` without copying; name universes are bounded in practice
/// (they mirror a deployment's sensor catalog), so the leak is a fixed
/// cost, not a growth term.
#[derive(Debug, Default)]
pub struct Interner {
    /// Interned strings, indexed by symbol id — insertion order.
    strings: Vec<&'static str>,
    /// Reverse lookup. A `BTreeMap`, not a `HashMap`: no hash state may
    /// reach simulation-visible structures (dde-lint rule R1).
    map: BTreeMap<&'static str, Symbol>,
}

impl Interner {
    /// Creates an empty table.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `component`, returning its symbol. The first call for a
    /// given string assigns the next dense id; later calls return the same
    /// symbol. Ids saturate at `u32::MAX` distinct components (far beyond
    /// any realistic name universe); the last slot is then reused rather
    /// than panicking.
    pub fn intern(&mut self, component: &str) -> Symbol {
        if let Some(&sym) = self.map.get(component) {
            return sym;
        }
        let id = u32::try_from(self.strings.len()).unwrap_or(u32::MAX - 1);
        let leaked: &'static str = Box::leak(component.to_owned().into_boxed_str());
        if (id as usize) < self.strings.len() {
            // Saturated: reuse the final slot (unreachable in practice).
            return Symbol(id);
        }
        self.strings.push(leaked);
        self.map.insert(leaked, Symbol(id));
        Symbol(id)
    }

    /// The symbol for `component`, if it has been interned.
    pub fn lookup(&self, component: &str) -> Option<Symbol> {
        self.map.get(component).copied()
    }

    /// The string for `sym`, if it was produced by this table.
    pub fn resolve(&self, sym: Symbol) -> Option<&'static str> {
        self.strings.get(sym.0 as usize).copied()
    }

    /// Number of distinct components interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The interned components in insertion order (id order) — the
    /// determinism witness: two same-seed runs must produce equal
    /// snapshots.
    pub fn snapshot(&self) -> Vec<&'static str> {
        self.strings.clone()
    }
}

fn global() -> &'static RwLock<Interner> {
    static GLOBAL: OnceLock<RwLock<Interner>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(Interner::new()))
}

thread_local! {
    /// Per-thread snapshot of the global table's string column. The global
    /// table is append-only and interned strings are `'static`, so a stale
    /// snapshot is never *wrong* — it can only be missing recently-interned
    /// ids, which triggers a refresh under the read lock. Steady-state
    /// resolution (every id already snapshotted) touches no lock at all,
    /// which keeps `Name`'s comparison slow path competitive with the raw
    /// string representation it replaced.
    static LOCAL_STRINGS: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

fn resolve_local(cache: &RefCell<Vec<&'static str>>, sym: Symbol) -> &'static str {
    let idx = sym.0 as usize;
    if let Some(&s) = cache.borrow().get(idx) {
        return s;
    }
    let mut local = cache.borrow_mut();
    let g = global().read().unwrap_or_else(|e| e.into_inner());
    local.clear();
    local.extend_from_slice(&g.strings);
    local.get(idx).copied().unwrap_or("<unknown-symbol>")
}

/// Compares two symbols' resolved strings lexicographically, touching the
/// thread-local snapshot once — the slow path of `Name::cmp` (symbol-equal
/// components never get here).
pub(crate) fn cmp_resolved(a: Symbol, b: Symbol) -> Ordering {
    LOCAL_STRINGS.with(|cache| {
        let sa = resolve_local(cache, a);
        let sb = resolve_local(cache, b);
        sa.cmp(sb)
    })
}

/// Interns `component` in the global table used by
/// [`Name`](crate::name::Name).
///
/// Takes only a read lock when the component is already interned (the
/// steady state after warm-up).
pub fn intern(component: &str) -> Symbol {
    if let Some(sym) = global()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .lookup(component)
    {
        return sym;
    }
    global()
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .intern(component)
}

/// Number of distinct components in the global table — exposed so
/// regression tests can assert that a repeated same-seed run interns
/// nothing new.
pub fn global_len() -> usize {
    global().read().unwrap_or_else(|e| e.into_inner()).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = Interner::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        let a2 = t.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), Some("alpha"));
        assert_eq!(t.resolve(b), Some("beta"));
        assert_eq!(b.id(), a.id() + 1, "ids are dense in insertion order");
    }

    #[test]
    fn lookup_without_interning() {
        let mut t = Interner::new();
        assert_eq!(t.lookup("x"), None);
        let x = t.intern("x");
        assert_eq!(t.lookup("x"), Some(x));
    }

    #[test]
    fn snapshot_preserves_insertion_order() {
        let mut t = Interner::new();
        for c in ["zulu", "alpha", "mike"] {
            t.intern(c);
        }
        assert_eq!(t.snapshot(), vec!["zulu", "alpha", "mike"]);
    }

    #[test]
    fn same_sequence_same_table() {
        // The determinism contract: identical interning sequences yield
        // identical tables, independent of any ambient state.
        let seq = ["city", "r3", "d7", "noon", "camera1", "r3", "city"];
        let mut t1 = Interner::new();
        let mut t2 = Interner::new();
        let ids1: Vec<u32> = seq.iter().map(|c| t1.intern(c).id()).collect();
        let ids2: Vec<u32> = seq.iter().map(|c| t2.intern(c).id()).collect();
        assert_eq!(ids1, ids2);
        assert_eq!(t1.snapshot(), t2.snapshot());
    }

    #[test]
    fn global_intern_resolves_via_as_str() {
        let s = intern("global-intern-test-component");
        assert_eq!(s.as_str(), "global-intern-test-component");
        assert_eq!(s.to_string(), "global-intern-test-component");
        assert_eq!(intern("global-intern-test-component"), s);
    }

    #[test]
    fn foreign_symbol_resolves_to_placeholder() {
        // A symbol minted far beyond the global table's range must not
        // panic on resolution (no-panic rule R4).
        let bogus = Symbol(u32::MAX - 7);
        assert_eq!(bogus.as_str(), "<unknown-symbol>");
    }
}

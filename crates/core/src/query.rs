//! Per-query state at the originating node (§VI-A).
//!
//! A query is *decided* the moment its DNF evaluates to true (some course of
//! action fully supported by fresh evidence) or false (every course of
//! action ruled out). It is *missed* if its deadline passes first. Because
//! evaluation reads label values through their validity windows, previously
//! resolved labels expire back to unknown and can reopen the decision — the
//! refetch churn the baselines suffer from in Fig. 2.

use crate::msg::QueryId;
use dde_logic::dnf::{Dnf, Resolution};
use dde_logic::label::{Assignment, Label};
use dde_logic::time::{SimDuration, SimTime};
use dde_logic::truth::Truth;
use dde_naming::name::Name;
use std::collections::BTreeSet;

/// The decided outcome of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The indexed course of action is viable.
    Viable(usize),
    /// No course of action is viable.
    Infeasible,
}

/// Lifecycle of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// Awaiting evidence.
    Pending,
    /// Decided before the deadline.
    Decided {
        /// What was decided.
        outcome: QueryOutcome,
        /// When.
        at: SimTime,
    },
    /// Deadline passed while undecided.
    Missed,
}

impl QueryStatus {
    /// Whether the query reached a terminal state.
    pub fn is_final(self) -> bool {
        !matches!(self, QueryStatus::Pending)
    }
}

/// An in-flight fetch on behalf of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct Outstanding {
    /// The requested object.
    pub name: Name,
    /// The labels it was requested for (a panorama fetch resolves several).
    pub wanted: Vec<Label>,
    /// When the request was issued.
    pub sent_at: SimTime,
}

/// Counters accumulated per query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCounters {
    /// Fetch requests issued into the network.
    pub requests_sent: u64,
    /// Labels learned by annotating delivered evidence.
    pub labels_from_data: u64,
    /// Labels learned from shared label values.
    pub labels_from_shares: u64,
    /// Labels learned by sampling a co-located sensor.
    pub labels_from_local: u64,
    /// Times a previously known label expired while still needed.
    pub label_expiries: u64,
}

/// The originating node's state for one decision query.
#[derive(Debug, Clone)]
pub struct QueryState {
    /// Query id.
    pub id: QueryId,
    /// The decision logic.
    pub expr: Dnf,
    /// When the query was issued.
    pub issued_at: SimTime,
    /// Absolute deadline.
    pub deadline_at: SimTime,
    /// Current (partial, freshness-aware) evidence.
    pub assignment: Assignment,
    /// Lifecycle status.
    pub status: QueryStatus,
    /// At most one in-flight fetch at a time (sequential retrieval, §III-A).
    pub outstanding: Option<Outstanding>,
    /// Accumulated counters.
    pub counters: QueryCounters,
}

impl QueryState {
    /// Creates a pending query issued at `issued_at` with relative
    /// `deadline`.
    pub fn new(id: QueryId, expr: Dnf, issued_at: SimTime, deadline: SimDuration) -> QueryState {
        QueryState {
            id,
            expr,
            issued_at,
            deadline_at: issued_at + deadline,
            assignment: Assignment::new(),
            status: QueryStatus::Pending,
            outstanding: None,
            counters: QueryCounters::default(),
        }
    }

    /// Records a resolved label value and clears the outstanding fetch if it
    /// was waiting on this label. Does not itself re-check resolution — call
    /// [`QueryState::check`] after a batch of updates.
    pub fn record_label(
        &mut self,
        label: &Label,
        value: bool,
        sampled_at: SimTime,
        validity: SimDuration,
    ) {
        self.assignment
            .set(label.clone(), Truth::from(value), sampled_at, validity);
        if let Some(o) = &mut self.outstanding {
            o.wanted.retain(|l| l != label);
            if o.wanted.is_empty() {
                self.outstanding = None;
            }
        }
    }

    /// Re-evaluates the decision at `now`, transitioning to `Decided` or (at
    /// or past the deadline) `Missed`. Terminal states are sticky.
    pub fn check(&mut self, now: SimTime) -> QueryStatus {
        if self.status.is_final() {
            return self.status;
        }
        match self.expr.resolution(&self.assignment, now) {
            Resolution::Viable(i) if now <= self.deadline_at => {
                self.status = QueryStatus::Decided {
                    outcome: QueryOutcome::Viable(i),
                    at: now,
                };
            }
            Resolution::Infeasible if now <= self.deadline_at => {
                self.status = QueryStatus::Decided {
                    outcome: QueryOutcome::Infeasible,
                    at: now,
                };
            }
            _ if now >= self.deadline_at => {
                self.status = QueryStatus::Missed;
            }
            _ => {}
        }
        self.status
    }

    /// Labels that can still influence the outcome at `now` (short-circuit
    /// pruning, §II-A).
    pub fn relevant_labels(&self, now: SimTime) -> BTreeSet<Label> {
        self.expr.relevant_labels(&self.assignment, now)
    }

    /// All labels of the expression still unknown (or expired) at `now` —
    /// what a *non*-decision-driven baseline keeps chasing.
    pub fn unknown_labels(&self, now: SimTime) -> BTreeSet<Label> {
        self.expr
            .labels()
            .into_iter()
            .filter(|l| !self.assignment.value_at(l, now).is_known())
            .collect()
    }

    /// Whether the outstanding fetch (if any) has been pending longer than
    /// `timeout`.
    pub fn outstanding_timed_out(&self, now: SimTime, timeout: SimDuration) -> bool {
        self.outstanding
            .as_ref()
            .is_some_and(|o| now.saturating_since(o.sent_at) > timeout)
    }

    /// Time from issue to decision, if decided.
    pub fn resolution_latency(&self) -> Option<SimDuration> {
        match self.status {
            QueryStatus::Decided { at, .. } => Some(at.saturating_since(self.issued_at)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_logic::dnf::Term;

    fn route_query() -> QueryState {
        QueryState::new(
            QueryId(1),
            Dnf::from_terms(vec![Term::all_of(["a", "b"]), Term::all_of(["c"])]),
            SimTime::from_secs(10),
            SimDuration::from_secs(60),
        )
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn decides_viable_on_complete_term() {
        let mut q = route_query();
        q.record_label(&Label::new("a"), true, t(12), d(100));
        assert_eq!(q.check(t(12)), QueryStatus::Pending);
        q.record_label(&Label::new("b"), true, t(14), d(100));
        let status = q.check(t(14));
        assert_eq!(
            status,
            QueryStatus::Decided {
                outcome: QueryOutcome::Viable(0),
                at: t(14)
            }
        );
        assert_eq!(q.resolution_latency(), Some(d(4)));
    }

    #[test]
    fn decides_infeasible_when_all_terms_dead() {
        let mut q = route_query();
        q.record_label(&Label::new("a"), false, t(11), d(100));
        q.record_label(&Label::new("c"), false, t(12), d(100));
        assert_eq!(
            q.check(t(12)),
            QueryStatus::Decided {
                outcome: QueryOutcome::Infeasible,
                at: t(12)
            }
        );
    }

    #[test]
    fn misses_deadline() {
        let mut q = route_query();
        assert_eq!(q.check(t(69)), QueryStatus::Pending);
        assert_eq!(q.check(t(70)), QueryStatus::Missed);
        // Sticky: late evidence does not revive it.
        q.record_label(&Label::new("c"), true, t(71), d(100));
        assert_eq!(q.check(t(71)), QueryStatus::Missed);
        assert!(q.resolution_latency().is_none());
    }

    #[test]
    fn terminal_states_sticky() {
        let mut q = route_query();
        q.record_label(&Label::new("c"), true, t(12), d(100));
        let decided = q.check(t(12));
        assert!(decided.is_final());
        // Even past deadline, stays Decided.
        assert_eq!(q.check(t(100)), decided);
    }

    #[test]
    fn expiry_reopens_pending_decision() {
        let mut q = route_query();
        // c true but with tiny validity: decided now...
        q.record_label(&Label::new("c"), true, t(12), d(2));
        assert!(matches!(q.check(t(12)), QueryStatus::Decided { .. }));
        // ...but had we not checked until expiry, it would still be pending.
        let mut q2 = route_query();
        q2.record_label(&Label::new("c"), true, t(12), d(2));
        assert_eq!(q2.check(t(20)), QueryStatus::Pending);
        assert!(q2.unknown_labels(t(20)).contains("c"));
    }

    #[test]
    fn relevant_labels_prune_dead_terms() {
        let mut q = route_query();
        q.record_label(&Label::new("a"), false, t(11), d(100));
        let rel = q.relevant_labels(t(11));
        assert_eq!(rel.len(), 1);
        assert!(rel.contains("c"));
        // Baseline view chases b too (it ignores decision structure).
        let unknown = q.unknown_labels(t(11));
        assert_eq!(unknown.len(), 2);
        assert!(unknown.contains("b"));
    }

    #[test]
    fn record_label_clears_matching_outstanding() {
        let mut q = route_query();
        q.outstanding = Some(Outstanding {
            name: "/cam/x".parse().unwrap(),
            wanted: vec![Label::new("a"), Label::new("c")],
            sent_at: t(11),
        });
        q.record_label(&Label::new("b"), true, t(12), d(100));
        assert!(q.outstanding.is_some(), "unrelated label keeps it");
        q.record_label(&Label::new("a"), true, t(13), d(100));
        assert!(
            q.outstanding.is_some(),
            "partially-satisfied multi-label fetch stays outstanding"
        );
        q.record_label(&Label::new("c"), true, t(13), d(100));
        assert!(q.outstanding.is_none());
    }

    #[test]
    fn outstanding_timeout() {
        let mut q = route_query();
        assert!(!q.outstanding_timed_out(t(100), d(5)));
        q.outstanding = Some(Outstanding {
            name: "/cam/x".parse().unwrap(),
            wanted: vec![Label::new("a")],
            sent_at: t(20),
        });
        assert!(!q.outstanding_timed_out(t(24), d(5)));
        assert!(q.outstanding_timed_out(t(26), d(5)));
    }

    #[test]
    fn decision_exactly_at_deadline_counts() {
        let mut q = route_query();
        q.record_label(&Label::new("c"), true, t(70), d(100));
        assert!(matches!(q.check(t(70)), QueryStatus::Decided { .. }));
    }
}

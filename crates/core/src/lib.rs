//! # dde-core — Athena, the decision-driven execution system
//!
//! The paper's primary contribution (§II, §VI): a distributed system in
//! which *all resource consumption is driven by the information needs of
//! decision making*. Applications submit decision queries as Boolean
//! expressions over world-state labels; the system plans evidence
//! retrieval around the decision structure — short-circuiting, validity
//! awareness, caching, prefetching, and label sharing.
//!
//! - [`object`] — sampled evidence objects in flight;
//! - [`msg`] — the wire protocol (`QueryAnnounce` / `Request` / `Data` /
//!   `LabelShare`);
//! - [`annotate`] — annotators (ground-truth, noisy, lying) and trust;
//! - [`query`] — per-query state: freshness-aware partial evidence,
//!   deadline lifecycle;
//! - [`strategy`] — the five retrieval schemes of the evaluation
//!   (`cmp`, `slt`, `lcf`, `lvf`, `lvfl`);
//! - [`node`] — the Athena node protocol (the six functions of §VI);
//! - [`engine`] — scenario runner producing the paper's metrics.
//!
//! # Example
//!
//! ```
//! use dde_core::prelude::*;
//! use dde_workload::prelude::*;
//!
//! let scenario = Scenario::build(ScenarioConfig::small().with_seed(42));
//! let report = run_scenario(&scenario, RunOptions::new(Strategy::Lvf));
//! assert!(report.resolution_ratio() > 0.0);
//! ```

#![warn(missing_docs)]
// Determinism guardrails (see clippy.toml and dde-lint): hashed collections
// and ambient clocks/env reads are disallowed in simulation library code.
#![deny(clippy::disallowed_methods, clippy::disallowed_types)]

pub mod annotate;
pub mod engine;
pub mod msg;
pub mod node;
pub mod object;
pub mod query;
pub mod strategy;

pub use annotate::{
    Annotator, BiasedSourcesAnnotator, GroundTruthAnnotator, LyingAnnotator, NoisyAnnotator,
    TrustPolicy,
};
pub use engine::{
    build_nodes, build_shared_world, collect_report_parts, run_all_strategies, run_scenario,
    run_scenario_observed, run_scenario_sharded, run_scenario_sharded_observed,
    run_scenario_with_annotator, QueryRecord, RunOptions, RunReport,
};
pub use msg::{AthenaMsg, QueryId, RequestKind};
pub use node::{AthenaEvent, AthenaNode, CachedLabel, NodeConfig, NodeStats, SharedWorld};
pub use object::EvidenceObject;
pub use query::{QueryCounters, QueryOutcome, QueryState, QueryStatus};
pub use strategy::Strategy;

/// Convenient glob-import of the crate's primary types.
pub mod prelude {
    pub use crate::annotate::{Annotator, GroundTruthAnnotator, TrustPolicy};
    pub use crate::engine::{
        run_all_strategies, run_scenario, run_scenario_observed, run_scenario_sharded,
        run_scenario_sharded_observed, run_scenario_with_annotator, RunOptions, RunReport,
    };
    pub use crate::msg::{AthenaMsg, QueryId};
    pub use crate::node::{AthenaNode, NodeConfig, SharedWorld};
    pub use crate::object::EvidenceObject;
    pub use crate::query::{QueryOutcome, QueryState, QueryStatus};
    pub use crate::strategy::Strategy;
}

//! Annotators: entities that turn evidence into label values (§II-B).
//!
//! "An annotator could be a human analyst receiving a picture of route
//! segment A, and setting the corresponding label, viableA, to true or
//! false … Alternatively, an annotator could be a machine vision algorithm
//! performing the same function." In the reproduction, annotators consult
//! the ground-truth [`WorldModel`] *at the object's sampling time* — the
//! picture shows the world as it was when taken. Noisy and adversarial
//! variants support the reliability experiments of §IV-B.
//!
//! Following the paper's prototype, predicate evaluation happens at the
//! query source ("we restrict predicate evaluators to sources of the
//! query", §VI-C), so each Athena node owns one annotator used for its own
//! queries.

use crate::object::EvidenceObject;
use dde_logic::label::Label;
use dde_netsim::topology::NodeId;
use dde_workload::world::WorldModel;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

/// Turns evidence objects into label judgments.
pub trait Annotator: std::fmt::Debug {
    /// Judges `label` from `object`'s evidence, or `None` when the object
    /// does not cover the label. The world is consulted at the object's
    /// sampling time.
    fn annotate(&self, object: &EvidenceObject, label: &Label, world: &WorldModel) -> Option<bool>;
}

/// A perfect annotator: reads the ground truth.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroundTruthAnnotator;

impl Annotator for GroundTruthAnnotator {
    fn annotate(&self, object: &EvidenceObject, label: &Label, world: &WorldModel) -> Option<bool> {
        if !object.covers_label(label) {
            return None;
        }
        Some(world.value(label, object.sampled_at))
    }
}

/// An annotator that misjudges each (object, label) pair independently with
/// probability `flip_prob`, deterministically per seed.
#[derive(Debug, Clone, Copy)]
pub struct NoisyAnnotator {
    seed: u64,
    flip_prob: f64,
}

impl NoisyAnnotator {
    /// Creates a noisy annotator.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= flip_prob <= 1.0`.
    pub fn new(seed: u64, flip_prob: f64) -> NoisyAnnotator {
        assert!((0.0..=1.0).contains(&flip_prob), "flip_prob out of range");
        NoisyAnnotator { seed, flip_prob }
    }
}

impl Annotator for NoisyAnnotator {
    fn annotate(&self, object: &EvidenceObject, label: &Label, world: &WorldModel) -> Option<bool> {
        let truth = GroundTruthAnnotator.annotate(object, label, world)?;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        object.name.to_string().hash(&mut h);
        object.sampled_at.as_micros().hash(&mut h);
        label.as_str().hash(&mut h);
        let unit = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
        Some(if unit < self.flip_prob { !truth } else { truth })
    }
}

/// Inverts judgments for evidence originating at the listed sources —
/// models consistently faulty or compromised sensors, the situation the
/// paper's source-reliability profiles (§IV-B) are designed to catch.
#[derive(Debug, Clone)]
pub struct BiasedSourcesAnnotator {
    bad_sources: BTreeSet<NodeId>,
}

impl BiasedSourcesAnnotator {
    /// Creates an annotator that misreads evidence from `bad_sources`.
    pub fn new<I: IntoIterator<Item = NodeId>>(bad_sources: I) -> BiasedSourcesAnnotator {
        BiasedSourcesAnnotator {
            bad_sources: bad_sources.into_iter().collect(),
        }
    }
}

impl Annotator for BiasedSourcesAnnotator {
    fn annotate(&self, object: &EvidenceObject, label: &Label, world: &WorldModel) -> Option<bool> {
        let truth = GroundTruthAnnotator.annotate(object, label, world)?;
        Some(if self.bad_sources.contains(&object.source) {
            !truth
        } else {
            truth
        })
    }
}

/// An adversarial annotator: always lies.
#[derive(Debug, Clone, Copy, Default)]
pub struct LyingAnnotator;

impl Annotator for LyingAnnotator {
    fn annotate(&self, object: &EvidenceObject, label: &Label, world: &WorldModel) -> Option<bool> {
        GroundTruthAnnotator
            .annotate(object, label, world)
            .map(|v| !v)
    }
}

/// Trust policy over annotator signatures (§III-B: "the label values
/// computed by different annotators will be signed by the annotator. Such
/// signatures can be used to determine if a particular cached label meets
/// the trust requirements of the source").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum TrustPolicy {
    /// Accept labels signed by any annotator.
    #[default]
    TrustAll,
    /// Accept only labels signed by the listed annotators.
    TrustOnly(BTreeSet<NodeId>),
    /// Never accept shared labels; always insist on raw evidence.
    TrustNone,
}

impl TrustPolicy {
    /// Whether a label signed by `annotator` is acceptable.
    pub fn accepts(&self, annotator: NodeId) -> bool {
        match self {
            TrustPolicy::TrustAll => true,
            TrustPolicy::TrustOnly(set) => set.contains(&annotator),
            TrustPolicy::TrustNone => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_logic::time::{SimDuration, SimTime};
    use dde_workload::world::DynamicsClass;

    fn setup() -> (WorldModel, EvidenceObject, Label) {
        let mut world = WorldModel::new(5);
        let label = Label::new("viable/x");
        world.register(
            label.clone(),
            DynamicsClass::Fast,
            SimDuration::from_secs(10),
            0.5,
        );
        let object = EvidenceObject {
            name: "/cam/a".parse().unwrap(),
            covers: vec![label.clone()],
            size: 1000,
            source: NodeId(0),
            sampled_at: SimTime::from_secs(3),
            validity: SimDuration::from_secs(10),
        };
        (world, object, label)
    }

    #[test]
    fn ground_truth_reads_world_at_sampling_time() {
        let (world, mut object, label) = setup();
        let v = GroundTruthAnnotator
            .annotate(&object, &label, &world)
            .unwrap();
        assert_eq!(v, world.value(&label, SimTime::from_secs(3)));
        // A sample from a different epoch may read differently but always
        // reflects its own sampling time.
        object.sampled_at = SimTime::from_secs(25);
        let v2 = GroundTruthAnnotator
            .annotate(&object, &label, &world)
            .unwrap();
        assert_eq!(v2, world.value(&label, SimTime::from_secs(25)));
    }

    #[test]
    fn uncovered_label_yields_none() {
        let (world, object, _) = setup();
        assert!(GroundTruthAnnotator
            .annotate(&object, &Label::new("other"), &world)
            .is_none());
    }

    #[test]
    fn lying_annotator_inverts() {
        let (world, object, label) = setup();
        let truth = GroundTruthAnnotator.annotate(&object, &label, &world);
        let lie = LyingAnnotator.annotate(&object, &label, &world);
        assert_eq!(truth.map(|v| !v), lie);
    }

    #[test]
    fn noisy_annotator_extremes() {
        let (world, object, label) = setup();
        let truth = GroundTruthAnnotator.annotate(&object, &label, &world);
        assert_eq!(
            NoisyAnnotator::new(1, 0.0).annotate(&object, &label, &world),
            truth
        );
        assert_eq!(
            NoisyAnnotator::new(1, 1.0).annotate(&object, &label, &world),
            truth.map(|v| !v)
        );
    }

    #[test]
    fn noisy_annotator_deterministic_and_roughly_calibrated() {
        let (world, mut object, label) = setup();
        let noisy = NoisyAnnotator::new(9, 0.3);
        let mut flips = 0;
        let n = 1000;
        for k in 0..n {
            object.sampled_at = SimTime::from_secs(k);
            let truth = GroundTruthAnnotator
                .annotate(&object, &label, &world)
                .unwrap();
            let got = noisy.annotate(&object, &label, &world).unwrap();
            let again = noisy.annotate(&object, &label, &world).unwrap();
            assert_eq!(got, again, "determinism");
            if got != truth {
                flips += 1;
            }
        }
        let rate = flips as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.06, "flip rate {rate}");
    }

    #[test]
    fn biased_sources_annotator_flips_only_bad_sources() {
        let (world, mut object, label) = setup();
        let biased = BiasedSourcesAnnotator::new([NodeId(7)]);
        let truth = GroundTruthAnnotator.annotate(&object, &label, &world);
        assert_eq!(biased.annotate(&object, &label, &world), truth);
        object.source = NodeId(7);
        assert_eq!(biased.annotate(&object, &label, &world), truth.map(|v| !v));
    }

    #[test]
    fn trust_policies() {
        assert!(TrustPolicy::TrustAll.accepts(NodeId(3)));
        assert!(!TrustPolicy::TrustNone.accepts(NodeId(3)));
        let only = TrustPolicy::TrustOnly([NodeId(1), NodeId(2)].into_iter().collect());
        assert!(only.accepts(NodeId(1)));
        assert!(!only.accepts(NodeId(3)));
        assert_eq!(TrustPolicy::default(), TrustPolicy::TrustAll);
    }

    #[test]
    #[should_panic(expected = "flip_prob out of range")]
    fn invalid_flip_prob() {
        let _ = NoisyAnnotator::new(0, 1.5);
    }
}

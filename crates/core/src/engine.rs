//! The experiment engine: scenario + strategy → one measured run (§VII).
//!
//! Builds a [`Simulator`] of [`AthenaNode`]s over the scenario topology,
//! injects the decision queries at their issue times, runs to quiescence,
//! and collects the two quantities the paper's figures report — the query
//! resolution ratio (Fig. 2) and total network bandwidth (Fig. 3) — plus a
//! breakdown useful for the ablations.

use crate::annotate::{Annotator, GroundTruthAnnotator, TrustPolicy};
use crate::node::{AthenaNode, NodeConfig, SharedWorld};
use crate::query::{QueryOutcome, QueryStatus};
use crate::strategy::Strategy;
use dde_logic::time::{SimDuration, SimTime};
use dde_netsim::fault::FaultSchedule;
use dde_netsim::shard::ShardedSimulator;
use dde_netsim::sim::Simulator;
use dde_netsim::Metrics;
use dde_obs::{CostLedger, Histogram, LedgerSink, SharedSink, Sink, TeeSink};
use dde_workload::scenario::Scenario;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Options for one run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// The strategy under test.
    pub strategy: Strategy,
    /// Override the strategy's prefetch default.
    pub prefetch: Option<bool>,
    /// Trust policy for shared labels.
    pub trust: TrustPolicy,
    /// Per-node content-store capacity in bytes.
    pub cache_capacity: u64,
    /// Approximate name substitution threshold (§V-A); `None` disables.
    pub approx_min_shared: Option<usize>,
    /// Criticality classes over the name space (§V-C).
    pub criticality: dde_naming::criticality::CriticalityMap,
    /// How many independent pieces of evidence must corroborate a label
    /// before it is accepted (§IV-B); 1 = no corroboration.
    pub corroboration: usize,
    /// Anticipation lead (§VIII): announce each query's decision structure
    /// this long before it is issued, so prefetching can stage evidence.
    /// Only meaningful with prefetch enabled.
    pub announce_lead: Option<SimDuration>,
    /// Sub-additive utility triage threshold for background pushes (§V-B);
    /// `None` disables.
    pub triage_threshold: Option<f64>,
    /// Medium model: wired point-to-point (default) or one shared radio
    /// transmitter per node, as in the paper's wireless emulation.
    pub medium: dde_netsim::MediumMode,
    /// Extra simulated time after the last deadline before the run is cut
    /// off.
    pub drain: SimDuration,
    /// Deterministic fault timeline, merged with whatever churn the
    /// scenario itself schedules. An empty schedule reproduces the
    /// fault-free run bit-for-bit.
    pub faults: FaultSchedule,
    /// Whether crashed nodes lose their content store and label cache on
    /// recovery (see [`NodeConfig::crash_wipes_cache`]).
    pub crash_wipes_cache: bool,
    /// Online adaptive planning (per-node estimators re-parameterizing the
    /// §III-A planners, plus optional admission control); `None` — the
    /// default — reproduces the static planners byte-for-byte.
    pub adaptive: Option<dde_sched::AdaptiveConfig>,
    /// Simulator seed (link-loss sampling).
    pub seed: u64,
}

impl RunOptions {
    /// Defaults for `strategy`.
    pub fn new(strategy: Strategy) -> RunOptions {
        RunOptions {
            strategy,
            prefetch: None,
            trust: TrustPolicy::TrustAll,
            cache_capacity: 64_000_000,
            approx_min_shared: None,
            criticality: dde_naming::criticality::CriticalityMap::new(),
            corroboration: 1,
            announce_lead: None,
            triage_threshold: None,
            medium: dde_netsim::MediumMode::FullDuplex,
            drain: SimDuration::from_secs(5),
            faults: FaultSchedule::new(),
            crash_wipes_cache: false,
            adaptive: None,
            seed: 7,
        }
    }
}

/// Per-query record for downstream analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecord {
    /// The query's id.
    pub id: crate::msg::QueryId,
    /// The issuing node.
    pub origin: dde_netsim::NodeId,
    /// Terminal status.
    pub status: QueryStatus,
    /// Issue-to-decision latency, when decided.
    pub latency: Option<SimDuration>,
    /// Requests sent, labels from data/shares/local, expiries.
    pub counters: crate::query::QueryCounters,
}

/// Aggregated results of one run.
///
/// Implements full [`PartialEq`]: two reports compare equal only when every
/// metric and every per-query record matches, which is exactly the property
/// the determinism regression tests assert (same seed + same fault schedule
/// ⇒ identical report).
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The strategy that ran.
    pub strategy: Strategy,
    /// Total queries issued.
    pub total_queries: usize,
    /// Queries decided (either way) by their deadline.
    pub resolved: usize,
    /// Queries decided with a viable course of action.
    pub viable: usize,
    /// Queries decided infeasible.
    pub infeasible: usize,
    /// Queries that missed their deadline.
    pub missed: usize,
    /// Decided queries whose outcome matches ground truth at decision time.
    pub accurate: usize,
    /// Total bytes clocked onto all links.
    pub total_bytes: u64,
    /// Bytes by message kind (`announce`, `request`, `data`, `label`).
    pub bytes_by_kind: BTreeMap<&'static str, u64>,
    /// Mean time from issue to decision over decided queries.
    pub mean_resolution_latency: Option<SimDuration>,
    /// Requests answered from intermediate caches (sum over nodes).
    pub cache_hits: u64,
    /// Requests answered with shared labels (sum over nodes).
    pub label_hits: u64,
    /// Labels resolved by co-located sampling (no network).
    pub local_samples: u64,
    /// Source-side prefetch pushes.
    pub prefetch_pushes: u64,
    /// Requests answered with approximate (same-prefix) substitutes.
    pub approx_hits: u64,
    /// Background pushes dropped by utility triage (§V-B).
    pub triage_drops: u64,
    /// Queries shed by the admission gate (adaptive mode), summed over
    /// nodes.
    pub admission_shed: u64,
    /// Admission-gate deferral decisions (adaptive mode), summed over
    /// nodes.
    pub admission_deferred: u64,
    /// Number of fault events installed for this run (0 = fault-free).
    pub fault_events: usize,
    /// In-flight messages dropped because a fault took down their
    /// destination or link.
    pub messages_dropped_by_fault: u64,
    /// Queued (never transmitted) messages purged when their sender
    /// crashed or their link went down.
    pub messages_purged_by_fault: u64,
    /// Simulated time at which the run ended.
    pub finished_at: SimTime,
    /// Events processed by the simulator.
    pub events: u64,
    /// Fixed-bucket histogram of issue-to-decision latencies over decided
    /// queries; see [`RunReport::latency_p50`] and friends.
    pub latency_hist: Histogram,
    /// Per-node protocol counters, indexed by node id.
    pub node_stats: Vec<crate::node::NodeStats>,
    /// One record per query, in (origin, id) order.
    pub queries: Vec<QueryRecord>,
    /// Per-decision resource attribution, folded live from the trace
    /// stream. `Some` only for observed runs
    /// ([`run_scenario_observed`]) — the unobserved paths skip ledger
    /// bookkeeping entirely so their hot path stays free of it.
    pub ledger: Option<CostLedger>,
}

impl RunReport {
    /// The paper's Fig. 2 metric: fraction of queries decided by deadline.
    pub fn resolution_ratio(&self) -> f64 {
        if self.total_queries == 0 {
            return 1.0;
        }
        self.resolved as f64 / self.total_queries as f64
    }

    /// Fraction of decided queries that match ground truth.
    pub fn accuracy(&self) -> f64 {
        if self.resolved == 0 {
            return 1.0;
        }
        self.accurate as f64 / self.resolved as f64
    }

    /// Total bandwidth in megabytes (Fig. 3's unit).
    pub fn total_megabytes(&self) -> f64 {
        self.total_bytes as f64 / 1e6
    }

    /// Median issue-to-decision latency (bucket resolution); `None` if no
    /// query was decided.
    pub fn latency_p50(&self) -> Option<SimDuration> {
        self.latency_hist.p50()
    }

    /// 95th-percentile issue-to-decision latency (bucket resolution).
    pub fn latency_p95(&self) -> Option<SimDuration> {
        self.latency_hist.p95()
    }

    /// 99th-percentile issue-to-decision latency (bucket resolution).
    pub fn latency_p99(&self) -> Option<SimDuration> {
        self.latency_hist.p99()
    }

    /// Mean attributed bytes per resolved decision, from the run's cost
    /// ledger. `None` when the run was not observed or nothing resolved.
    pub fn cost_per_decision(&self) -> Option<f64> {
        self.ledger.as_ref().and_then(|l| l.cost_per_decision())
    }
}

/// Runs `scenario` under `options` with ground-truth annotators.
pub fn run_scenario(scenario: &Scenario, options: RunOptions) -> RunReport {
    run_scenario_with_annotator(scenario, options, Arc::new(GroundTruthAnnotator))
}

/// Runs `scenario` with a trace sink observing the full event lifecycle:
/// every link-layer event from the simulator and every protocol decision
/// from the Athena nodes flows into `sink`, stamped with simulated time.
/// The sink is flushed before the report is returned.
pub fn run_scenario_observed(
    scenario: &Scenario,
    options: RunOptions,
    sink: Box<dyn Sink>,
) -> RunReport {
    run_scenario_inner(
        scenario,
        options,
        Arc::new(GroundTruthAnnotator),
        Some(sink),
    )
}

/// Runs `scenario` with a custom annotator (noise/reliability ablations).
pub fn run_scenario_with_annotator(
    scenario: &Scenario,
    options: RunOptions,
    annotator: Arc<dyn Annotator + Send + Sync>,
) -> RunReport {
    run_scenario_inner(scenario, options, annotator, None)
}

/// Runs `scenario` on the sharded conservative-parallel engine
/// ([`ShardedSimulator`]) with up to `threads` worker regions.
///
/// A given `(scenario, options)` produces the same report at any thread
/// count — including the event count and, for
/// [`run_scenario_sharded_observed`], a byte-identical trace. Note the
/// sharded engine is seed-stable across *its own* thread counts, not
/// byte-compatible with [`run_scenario`]'s classic engine (different
/// tie-break and fault-batching rules; see `dde_netsim::shard`).
pub fn run_scenario_sharded(scenario: &Scenario, options: RunOptions, threads: usize) -> RunReport {
    run_scenario_sharded_inner(scenario, options, threads, None)
}

/// Observed variant of [`run_scenario_sharded`]: per-shard trace streams
/// are merged into one deterministically ordered stream feeding `sink`,
/// with the live cost ledger teed in exactly as in
/// [`run_scenario_observed`].
pub fn run_scenario_sharded_observed(
    scenario: &Scenario,
    options: RunOptions,
    threads: usize,
    sink: Box<dyn Sink>,
) -> RunReport {
    run_scenario_sharded_inner(scenario, options, threads, Some(sink))
}

fn run_scenario_sharded_inner(
    scenario: &Scenario,
    options: RunOptions,
    threads: usize,
    sink: Option<Box<dyn Sink>>,
) -> RunReport {
    let annotator: Arc<dyn Annotator + Send + Sync> = Arc::new(GroundTruthAnnotator);
    let shared = build_shared_world(scenario, &options);
    let nodes = build_nodes(scenario, &shared, &annotator);
    let mut sim = ShardedSimulator::new(scenario.topology.clone(), nodes, options.seed, threads);
    sim.set_medium(options.medium);
    let ledger_handle = sink.map(|user| {
        let shared = SharedSink::new(LedgerSink::new());
        sim.set_sink(Box::new(TeeSink::new(user, Box::new(shared.clone()))));
        shared
    });

    let mut faults = scenario.faults.clone();
    faults.merge(&options.faults);
    sim.install_faults(&faults);

    let mut last_deadline = SimTime::ZERO;
    for q in &scenario.queries {
        if let Some(lead) = options.announce_lead {
            sim.schedule_external(
                q.issue_at - lead,
                q.origin,
                crate::node::AthenaEvent::AnnounceOnly(q.clone()),
            );
        }
        sim.schedule_external(q.issue_at, q.origin, q.clone().into());
        last_deadline = last_deadline.max(q.issue_at + q.deadline);
    }
    let horizon = last_deadline + options.drain;
    sim.run_until(horizon);

    let _ = sim.sink_mut().flush();
    let metrics = sim.metrics();
    let nodes: Vec<&AthenaNode> = sim.nodes().collect();
    let mut report = collect_report_parts(
        &metrics,
        sim.now(),
        sim.events_processed(),
        &nodes,
        scenario,
        options.strategy,
        faults.len(),
    );
    drop(nodes);
    report.ledger = ledger_handle.map(|h| h.with(|l| l.take_ledger()));
    report
}

/// Builds the world + config shared by every node of a run. Public so
/// alternative engines (the `dde-net` live-transport host) assemble node
/// state exactly as the DES entry points do.
pub fn build_shared_world(scenario: &Scenario, options: &RunOptions) -> Arc<SharedWorld> {
    let mut config = NodeConfig::new(options.strategy);
    config.prefetch = options.prefetch;
    config.trust = options.trust.clone();
    config.cache_capacity = options.cache_capacity;
    config.approx_min_shared = options.approx_min_shared;
    config.criticality = options.criticality.clone();
    config.corroboration = options.corroboration;
    config.triage_threshold = options.triage_threshold;
    config.crash_wipes_cache = options.crash_wipes_cache;
    config.adaptive = options.adaptive;
    config.prob_true_prior = scenario.config.prob_viable;
    config.planning_bandwidth_bps = scenario.config.link_bandwidth_bps;

    Arc::new(SharedWorld {
        catalog: scenario.catalog.clone(),
        world: scenario.world.clone(),
        config,
    })
}

/// One Athena node per topology node, all sharing `shared` + `annotator`.
pub fn build_nodes(
    scenario: &Scenario,
    shared: &Arc<SharedWorld>,
    annotator: &Arc<dyn Annotator + Send + Sync>,
) -> Vec<AthenaNode> {
    (0..scenario.topology.len())
        .map(|_| AthenaNode::new(Arc::clone(shared), Arc::clone(annotator)))
        .collect()
}

fn run_scenario_inner(
    scenario: &Scenario,
    options: RunOptions,
    annotator: Arc<dyn Annotator + Send + Sync>,
    sink: Option<Box<dyn Sink>>,
) -> RunReport {
    let shared = build_shared_world(scenario, &options);
    let nodes = build_nodes(scenario, &shared, &annotator);
    let mut sim = Simulator::new(scenario.topology.clone(), nodes, options.seed);
    sim.set_medium(options.medium);
    // Observed runs tee the event stream into a live cost ledger alongside
    // the caller's sink, so every observed run gets per-decision
    // attribution for free; unobserved runs skip the machinery entirely.
    let ledger_handle = sink.map(|user| {
        let shared = SharedSink::new(LedgerSink::new());
        sim.set_sink(Box::new(TeeSink::new(user, Box::new(shared.clone()))));
        shared
    });

    // Faults: whatever the scenario schedules (churn config) plus whatever
    // the caller adds on top (partitions, targeted crashes). Installing an
    // empty schedule is a strict no-op.
    let mut faults = scenario.faults.clone();
    faults.merge(&options.faults);
    sim.install_faults(&faults);

    let mut last_deadline = SimTime::ZERO;
    for q in &scenario.queries {
        if let Some(lead) = options.announce_lead {
            sim.schedule_external(
                q.issue_at - lead,
                q.origin,
                crate::node::AthenaEvent::AnnounceOnly(q.clone()),
            );
        }
        sim.schedule_external(q.issue_at, q.origin, q.clone().into());
        last_deadline = last_deadline.max(q.issue_at + q.deadline);
    }
    let horizon = last_deadline + options.drain;
    sim.run_until(horizon);

    // Flushing here (rather than leaving it to the caller) guarantees
    // streaming sinks have written the complete trace before the report is
    // in hand; a flush failure must not invalidate the run itself.
    let _ = sim.sink_mut().flush();
    let mut report = collect_report(&sim, scenario, options.strategy, faults.len());
    report.ledger = ledger_handle.map(|h| h.with(|l| l.take_ledger()));
    report
}

fn collect_report(
    sim: &Simulator<AthenaNode>,
    scenario: &Scenario,
    strategy: Strategy,
    fault_events: usize,
) -> RunReport {
    let nodes: Vec<&AthenaNode> = sim.nodes().collect();
    collect_report_parts(
        sim.metrics(),
        sim.now(),
        sim.events_processed(),
        &nodes,
        scenario,
        strategy,
        fault_events,
    )
}

/// Engine-agnostic report assembly: the classic and sharded simulators —
/// and the `dde-net` live-transport host — all reduce to the same
/// `(metrics, clock, event count, node states)` observables.
pub fn collect_report_parts(
    metrics: &Metrics,
    finished_at: SimTime,
    events: u64,
    nodes: &[&AthenaNode],
    scenario: &Scenario,
    strategy: Strategy,
    fault_events: usize,
) -> RunReport {
    let mut report = RunReport {
        strategy,
        total_queries: scenario.queries.len(),
        resolved: 0,
        viable: 0,
        infeasible: 0,
        missed: 0,
        accurate: 0,
        total_bytes: metrics.bytes_sent,
        bytes_by_kind: metrics.kinds().map(|(k, c)| (k, c.bytes)).collect(),
        mean_resolution_latency: None,
        cache_hits: 0,
        label_hits: 0,
        local_samples: 0,
        prefetch_pushes: 0,
        approx_hits: 0,
        triage_drops: 0,
        admission_shed: 0,
        admission_deferred: 0,
        fault_events,
        messages_dropped_by_fault: metrics.messages_dropped_by_fault,
        messages_purged_by_fault: metrics.messages_purged_by_fault,
        finished_at,
        events,
        latency_hist: Histogram::new(),
        node_stats: nodes.iter().map(|n| n.stats).collect(),
        queries: Vec::with_capacity(scenario.queries.len()),
        ledger: None,
    };

    let mut latency_sum = SimDuration::ZERO;
    let mut latency_count = 0u64;
    for node in nodes {
        report.cache_hits += node.stats.cache_hits;
        report.label_hits += node.stats.label_hits;
        report.local_samples += node.stats.local_samples;
        report.prefetch_pushes += node.stats.prefetch_pushes;
        report.approx_hits += node.stats.approx_hits;
        report.triage_drops += node.stats.triage_drops;
        report.admission_shed += node.stats.admission_shed;
        report.admission_deferred += node.stats.admission_deferred;
        for q in node.queries() {
            report.queries.push(QueryRecord {
                id: q.id,
                origin: scenario
                    .queries
                    .iter()
                    .find(|inst| inst.id == q.id.0)
                    .map(|inst| inst.origin)
                    .unwrap_or(dde_netsim::NodeId(0)),
                status: q.status,
                latency: q.resolution_latency(),
                counters: q.counters,
            });
            match q.status {
                QueryStatus::Decided { outcome, at } => {
                    report.resolved += 1;
                    match outcome {
                        QueryOutcome::Viable(i) => {
                            report.viable += 1;
                            // Accurate iff the chosen route is truly viable
                            // at decision time.
                            let term = &q.expr.terms()[i];
                            let truly = term.labels().all(|l| scenario.world.value(l, at));
                            if truly {
                                report.accurate += 1;
                            }
                        }
                        QueryOutcome::Infeasible => {
                            report.infeasible += 1;
                            let truly = q
                                .expr
                                .terms()
                                .iter()
                                .all(|t| t.labels().any(|l| !scenario.world.value(l, at)));
                            if truly {
                                report.accurate += 1;
                            }
                        }
                    }
                    let latency = at.saturating_since(q.issued_at);
                    latency_sum += latency;
                    latency_count += 1;
                    report.latency_hist.record(latency);
                }
                QueryStatus::Missed => report.missed += 1,
                QueryStatus::Pending => {
                    // Ran out of simulated time before the deadline fired;
                    // count as missed for reporting purposes.
                    report.missed += 1;
                }
            }
        }
    }
    if latency_count > 0 {
        report.mean_resolution_latency = Some(latency_sum / latency_count);
    }
    report
}

/// Runs all five strategies on the same scenario; convenience for the
/// figure harnesses.
pub fn run_all_strategies(scenario: &Scenario, seed: u64) -> Vec<RunReport> {
    Strategy::ALL
        .iter()
        .map(|&s| {
            let mut o = RunOptions::new(s);
            o.seed = seed;
            run_scenario(scenario, o)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_workload::scenario::ScenarioConfig;

    fn small_scenario(seed: u64, fast_ratio: f64) -> Scenario {
        Scenario::build(
            ScenarioConfig::small()
                .with_seed(seed)
                .with_fast_ratio(fast_ratio),
        )
    }

    #[test]
    fn lvf_resolves_small_scenario() {
        let s = small_scenario(3, 0.2);
        let r = run_scenario(&s, RunOptions::new(Strategy::Lvf));
        assert_eq!(r.total_queries, 8);
        assert!(
            r.resolution_ratio() > 0.7,
            "lvf resolved only {}/{}",
            r.resolved,
            r.total_queries
        );
        assert!(r.total_bytes > 0);
        assert_eq!(
            r.resolved + r.missed,
            r.total_queries,
            "every query accounted for"
        );
    }

    #[test]
    fn ground_truth_annotation_is_accurate() {
        let s = small_scenario(4, 0.2);
        let r = run_scenario(&s, RunOptions::new(Strategy::Lvf));
        assert!(r.resolved > 0);
        assert_eq!(
            r.accuracy(),
            1.0,
            "fresh ground-truth annotations must be accurate"
        );
    }

    #[test]
    fn label_sharing_does_not_hurt_resolution() {
        let s = small_scenario(5, 0.4);
        let lvf = run_scenario(&s, RunOptions::new(Strategy::Lvf));
        let lvfl = run_scenario(&s, RunOptions::new(Strategy::LvfLabelShare));
        assert!(lvfl.resolved >= lvf.resolved.saturating_sub(1));
    }

    #[test]
    fn deterministic_runs() {
        let s = small_scenario(6, 0.4);
        let a = run_scenario(&s, RunOptions::new(Strategy::Lvf));
        let b = run_scenario(&s, RunOptions::new(Strategy::Lvf));
        assert_eq!(a.total_bytes, b.total_bytes);
        assert_eq!(a.resolved, b.resolved);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn run_all_returns_five_reports() {
        let s = small_scenario(7, 0.4);
        let reports = run_all_strategies(&s, 1);
        assert_eq!(reports.len(), 5);
        let codes: Vec<_> = reports.iter().map(|r| r.strategy.code()).collect();
        assert_eq!(codes, vec!["cmp", "slt", "lcf", "lvf", "lvfl"]);
    }
}

//! Athena's wire messages (§VI).
//!
//! Four message families, mirroring the paper's protocol functions:
//!
//! - [`AthenaMsg::QueryAnnounce`] — the query's Boolean expression, flooded
//!   to neighbors so they may prefetch (`Query_Recv` step iv);
//! - [`AthenaMsg::Request`] — a hop-by-hop object request, fetch or
//!   prefetch (`Request_Send`/`Request_Recv`);
//! - [`AthenaMsg::Data`] — the evidence object traveling back
//!   (`Data_Send`/`Data_Recv`);
//! - [`AthenaMsg::LabelShare`] — an annotated label value propagated toward
//!   the data source for reuse (§VI-D), orders of magnitude smaller than
//!   the object it replaces.

use crate::object::EvidenceObject;
use dde_logic::dnf::Dnf;
use dde_logic::label::Label;
use dde_logic::time::{SimDuration, SimTime};
use dde_naming::name::Name;
use dde_netsim::sim::WireMessage;
use dde_netsim::topology::NodeId;

/// Globally-unique query identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

impl core::fmt::Display for QueryId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Whether a request is a foreground fetch or a background prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Foreground: forwarded hop-by-hop toward the source.
    Fetch,
    /// Background: answered from local state only, never forwarded
    /// ("prefetch requests are not forwarded", §VI-B).
    Prefetch,
}

/// One Athena protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum AthenaMsg {
    /// A decision query's expression, flooded for prefetching.
    QueryAnnounce {
        /// The query.
        qid: QueryId,
        /// The node that issued it.
        origin: NodeId,
        /// Its DNF decision logic.
        expr: Dnf,
        /// Absolute decision deadline.
        deadline_at: SimTime,
    },
    /// A request for an evidence object.
    Request {
        /// The object's content name.
        name: Name,
        /// The labels the requester wants resolved from this object (a
        /// panorama request may carry several). A node may answer with
        /// cached labels instead of data only if it can supply *all* of
        /// them — otherwise the evidence itself must travel.
        wanted: Vec<Label>,
        /// The query on whose behalf the request was made.
        qid: QueryId,
        /// The node that originated the request.
        origin: NodeId,
        /// Fetch or prefetch.
        kind: RequestKind,
    },
    /// An evidence object flowing back to requesters, or being pushed
    /// toward a query origin as a prefetch (Fig. 1's grey arrows).
    Data {
        /// The sampled object.
        object: EvidenceObject,
        /// For prefetch pushes: the query origin the object is being staged
        /// toward. `None` for ordinary request-driven replies.
        push_to: Option<NodeId>,
        /// The decision query this object is traveling for, when the
        /// sender knows it (the PIT interest or prefetch task it serves).
        /// Observational only: excluded from [`WireMessage::wire_size`],
        /// so carrying it changes no simulation outcome.
        for_query: Option<QueryId>,
    },
    /// A shared annotated label (§VI-D).
    LabelShare {
        /// The resolved label.
        label: Label,
        /// Its value.
        value: bool,
        /// When the underlying evidence was sampled.
        sampled_at: SimTime,
        /// Validity of the underlying evidence.
        validity: SimDuration,
        /// The annotator that judged the evidence (signature).
        annotator: NodeId,
        /// The object the judgment was based on.
        based_on: Name,
        /// The decision query whose annotation produced this share, when
        /// known. Observational only, like [`AthenaMsg::Data::for_query`].
        for_query: Option<QueryId>,
    },
}

/// Fixed per-message header overhead, bytes.
const HEADER_BYTES: u64 = 64;
/// Approximate wire bytes per name component.
const NAME_COMPONENT_BYTES: u64 = 12;
/// Approximate wire bytes per label reference in an announce.
const LABEL_REF_BYTES: u64 = 24;

fn name_bytes(name: &Name) -> u64 {
    HEADER_BYTES / 8 + name.len() as u64 * NAME_COMPONENT_BYTES
}

impl WireMessage for AthenaMsg {
    fn wire_size(&self) -> u64 {
        match self {
            AthenaMsg::QueryAnnounce { expr, .. } => {
                let literals: u64 = expr.terms().iter().map(|t| t.len() as u64).sum();
                HEADER_BYTES + literals * LABEL_REF_BYTES
            }
            AthenaMsg::Request { name, wanted, .. } => {
                HEADER_BYTES + name_bytes(name) + wanted.len() as u64 * LABEL_REF_BYTES
            }
            AthenaMsg::Data { object, .. } => HEADER_BYTES + name_bytes(&object.name) + object.size,
            AthenaMsg::LabelShare { based_on, .. } => HEADER_BYTES + name_bytes(based_on) + 32,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            AthenaMsg::QueryAnnounce { .. } => "announce",
            AthenaMsg::Request { .. } => "request",
            AthenaMsg::Data { .. } => "data",
            AthenaMsg::LabelShare { .. } => "label",
        }
    }

    /// Prefetch pushes ride in the background so they never delay
    /// foreground fetches on a link (§VI-A).
    fn background(&self) -> bool {
        matches!(
            self,
            AthenaMsg::Data {
                push_to: Some(_),
                ..
            }
        )
    }

    /// The decision query each message serves, for the `dde-obs` cost
    /// ledger. Synthetic re-forwarded requests (qid `u64::MAX`, see
    /// `node::reforward_request`) have no owning decision and land in the
    /// ledger's overhead bucket.
    fn attribution(&self) -> Option<u64> {
        match self {
            AthenaMsg::QueryAnnounce { qid, .. } => Some(qid.0),
            AthenaMsg::Request { qid, .. } => {
                if qid.0 == u64::MAX {
                    None
                } else {
                    Some(qid.0)
                }
            }
            AthenaMsg::Data { for_query, .. } | AthenaMsg::LabelShare { for_query, .. } => {
                for_query.map(|q| q.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_logic::dnf::Term;

    fn obj(size: u64) -> EvidenceObject {
        EvidenceObject {
            name: "/city/cam/n1/x".parse().unwrap(),
            covers: vec![Label::new("a")],
            size,
            source: NodeId(1),
            sampled_at: SimTime::ZERO,
            validity: SimDuration::from_secs(10),
        }
    }

    #[test]
    fn data_size_dominated_by_payload() {
        let m = AthenaMsg::Data {
            object: obj(500_000),
            push_to: None,
            for_query: None,
        };
        assert!(m.wire_size() >= 500_000);
        assert!(m.wire_size() < 500_000 + 1_000);
        assert_eq!(m.kind(), "data");
    }

    #[test]
    fn attribution_follows_the_causing_query() {
        let announce = AthenaMsg::QueryAnnounce {
            qid: QueryId(9),
            origin: NodeId(0),
            expr: Dnf::from_terms(vec![Term::all_of(["a"])]),
            deadline_at: SimTime::from_secs(60),
        };
        assert_eq!(announce.attribution(), Some(9));
        let data = AthenaMsg::Data {
            object: obj(100),
            push_to: None,
            for_query: Some(QueryId(4)),
        };
        assert_eq!(data.attribution(), Some(4));
        // A synthetic re-forwarded request has no owning decision.
        let reforward = AthenaMsg::Request {
            name: "/city/cam/n1/x".parse().unwrap(),
            wanted: vec![],
            qid: QueryId(u64::MAX),
            origin: NodeId(0),
            kind: RequestKind::Fetch,
        };
        assert_eq!(reforward.attribution(), None);
    }

    #[test]
    fn attribution_does_not_change_wire_size() {
        let without = AthenaMsg::Data {
            object: obj(500_000),
            push_to: None,
            for_query: None,
        };
        let with = AthenaMsg::Data {
            object: obj(500_000),
            push_to: None,
            for_query: Some(QueryId(1)),
        };
        assert_eq!(without.wire_size(), with.wire_size());
    }

    #[test]
    fn label_share_orders_of_magnitude_smaller_than_data() {
        let data = AthenaMsg::Data {
            object: obj(500_000),
            push_to: Some(NodeId(2)),
            for_query: None,
        };
        let label = AthenaMsg::LabelShare {
            label: Label::new("a"),
            value: true,
            sampled_at: SimTime::ZERO,
            validity: SimDuration::from_secs(10),
            annotator: NodeId(0),
            based_on: "/city/cam/n1/x".parse().unwrap(),
            for_query: None,
        };
        assert!(data.wire_size() / label.wire_size() > 100);
        assert_eq!(label.kind(), "label");
    }

    #[test]
    fn announce_size_scales_with_expression() {
        let small = AthenaMsg::QueryAnnounce {
            qid: QueryId(1),
            origin: NodeId(0),
            expr: Dnf::from_terms(vec![Term::all_of(["a"])]),
            deadline_at: SimTime::from_secs(60),
        };
        let big = AthenaMsg::QueryAnnounce {
            qid: QueryId(2),
            origin: NodeId(0),
            expr: Dnf::from_terms(vec![
                Term::all_of(["a", "b", "c", "d"]),
                Term::all_of(["e", "f", "g", "h"]),
            ]),
            deadline_at: SimTime::from_secs(60),
        };
        assert!(big.wire_size() > small.wire_size());
        assert_eq!(small.kind(), "announce");
    }

    #[test]
    fn request_size_modest() {
        let m = AthenaMsg::Request {
            name: "/city/cam/n1/x".parse().unwrap(),
            wanted: vec![Label::new("a"), Label::new("b")],
            qid: QueryId(1),
            origin: NodeId(0),
            kind: RequestKind::Fetch,
        };
        assert!(m.wire_size() < 250);
        assert_eq!(m.kind(), "request");
    }

    #[test]
    fn query_id_display() {
        assert_eq!(QueryId(7).to_string(), "q7");
    }
}

//! The five retrieval strategies of the evaluation (§VII).
//!
//! | code  | candidate set            | order                         | label sharing |
//! |-------|--------------------------|-------------------------------|---------------|
//! | `cmp` | every provider of every label | catalog order            | no            |
//! | `slt` | greedy min-cost source cover  | catalog order            | no            |
//! | `lcf` | greedy min-cost source cover  | cheapest object first    | no            |
//! | `lvf` | greedy min-cost source cover  | decision-driven (validity + short-circuit) | no |
//! | `lvfl`| greedy min-cost source cover  | decision-driven          | **yes**       |
//!
//! The decision-driven order is the paper's "Variational Longest Validity
//! First": live terms are ranked by expected truth-per-cost, and within the
//! chosen term objects follow the validity-feasible short-circuit greedy of
//! ref \[3] ([`dde_sched::hybrid`]).

use crate::query::QueryState;
use dde_coverage::setcover::{greedy_cover, Source};
use dde_logic::label::Label;
use dde_logic::meta::{Cost, Probability};
use dde_logic::time::SimTime;

use dde_netsim::topology::{NodeId, Topology};
use dde_sched::adaptive::AdaptiveState;
use dde_sched::hybrid::greedy_validity_shortcircuit;
use dde_sched::item::{Channel, RetrievalItem};
use dde_sched::shortcircuit::{and_truth_prob, expected_and_cost};
use dde_workload::catalog::Catalog;
use std::collections::BTreeSet;

/// Where the decision-driven planner gets its short-circuit probabilities
/// and provider-reliability weights.
///
/// [`Priors::Fixed`] reproduces the pre-adaptive planner bit for bit
/// (including the `p.powi(n)` grouping of multi-label fetches), so every
/// committed figure artifact is unchanged when adaptation is off.
/// [`Priors::Learned`] reads a node's [`AdaptiveState`]: per
/// *(name-prefix, condition)* truth estimates for term ordering and
/// per-source reliability scores for provider selection.
#[derive(Debug, Clone, Copy)]
pub enum Priors<'a> {
    /// One static short-circuit probability for every (object, label).
    Fixed(f64),
    /// Online estimates from the node's adaptive state.
    Learned(&'a AdaptiveState),
}

impl Priors<'_> {
    /// Probability that a single fetch of the object named `name` leaves
    /// every label in `labels` true (i.e. does *not* short-circuit the
    /// term).
    fn group_prob(&self, name: &dde_naming::name::Name, labels: &[Label]) -> f64 {
        match self {
            // Keep `.powi()`: a left-fold product associates differently
            // in floating point and would silently shift committed
            // artifacts.
            Priors::Fixed(p) => p.powi(labels.len() as i32),
            Priors::Learned(state) => {
                let rendered = name.to_string();
                labels
                    .iter()
                    .map(|l| state.prob_for(&rendered, l))
                    .product()
            }
        }
    }

    /// The fetch-success score of `source` in `[0, 1]`; `1.0` (neutral)
    /// for fixed priors.
    fn reliability(&self, source: NodeId) -> f64 {
        match self {
            Priors::Fixed(_) => 1.0,
            Priors::Learned(state) => state.reliability.score(source.0 as u32),
        }
    }
}

/// A retrieval strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// `cmp`: comprehensive retrieval — all relevant objects considered.
    Comprehensive,
    /// `slt`: source selection added.
    SelectedSources,
    /// `lcf`: lowest-cost object first.
    LowestCostFirst,
    /// `lvf`: decision-driven scheduling, no label sharing.
    Lvf,
    /// `lvfl`: decision-driven scheduling with label sharing.
    LvfLabelShare,
}

impl Strategy {
    /// All strategies in the paper's presentation order.
    pub const ALL: [Strategy; 5] = [
        Strategy::Comprehensive,
        Strategy::SelectedSources,
        Strategy::LowestCostFirst,
        Strategy::Lvf,
        Strategy::LvfLabelShare,
    ];

    /// The short code used in the paper's figures.
    pub fn code(self) -> &'static str {
        match self {
            Strategy::Comprehensive => "cmp",
            Strategy::SelectedSources => "slt",
            Strategy::LowestCostFirst => "lcf",
            Strategy::Lvf => "lvf",
            Strategy::LvfLabelShare => "lvfl",
        }
    }

    /// Whether resolved labels are propagated for reuse (§VI-D).
    pub fn label_sharing(self) -> bool {
        self == Strategy::LvfLabelShare
    }

    /// Whether retrieval exploits the decision structure (validity-aware
    /// ordering + short-circuit pruning).
    pub fn is_decision_driven(self) -> bool {
        matches!(self, Strategy::Lvf | Strategy::LvfLabelShare)
    }

    /// Whether the candidate set is source-selected (everything but `cmp`).
    pub fn source_selected(self) -> bool {
        self != Strategy::Comprehensive
    }

    /// The effective network cost of retrieving object `idx` at `origin`:
    /// object size times the hop count it must travel (minimum 1) — the
    /// bytes the fetch actually puts on the network.
    pub fn effective_cost(
        idx: usize,
        catalog: &Catalog,
        origin: NodeId,
        topology: &Topology,
    ) -> u64 {
        let spec = catalog.get(idx);
        let hops = topology
            .hop_distance(origin, spec.source)
            .unwrap_or(topology.len())
            .max(1) as u64;
        spec.size.saturating_mul(hops)
    }

    /// Whether object `idx`'s source is currently reachable from `origin`.
    /// Routing is fault-aware, so a crashed source or a partitioned segment
    /// shows up here; on a healthy connected topology everything is
    /// reachable and reachability-preferring selection is a no-op.
    pub fn is_reachable(
        idx: usize,
        catalog: &Catalog,
        origin: NodeId,
        topology: &Topology,
    ) -> bool {
        let source = catalog.get(idx).source;
        source == origin || topology.hop_distance(origin, source).is_some()
    }

    /// The candidate object set (catalog indices, ascending) for a query
    /// over `labels`, issued at `origin`. Source-selected strategies cover
    /// the labels at minimum *network* cost (size × hops), so nearby
    /// cameras win over marginally-smaller faraway ones (§III-B's network
    /// cost consideration).
    pub fn candidates(
        self,
        labels: &BTreeSet<Label>,
        catalog: &Catalog,
        origin: NodeId,
        topology: &Topology,
    ) -> Vec<usize> {
        if !self.source_selected() {
            // cmp: every provider of every referenced label.
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for l in labels {
                out.extend(catalog.providers_of(l).iter().copied());
            }
            return out.into_iter().collect();
        }
        // slt/lcf/lvf/lvfl: greedy min-cost cover of the labels.
        let sources: Vec<Source<usize>> = catalog
            .objects()
            .iter()
            .enumerate()
            .filter(|(_, o)| o.covers.iter().any(|l| labels.contains(l)))
            .map(|(i, o)| {
                Source::new(
                    i,
                    o.covers.iter().filter(|l| labels.contains(*l)).cloned(),
                    Cost::from_bytes(Self::effective_cost(i, catalog, origin, topology)),
                )
            })
            .collect();
        let cover = greedy_cover(labels, &sources);
        let mut chosen: Vec<usize> = cover.chosen.iter().map(|&k| sources[k].id).collect();
        chosen.sort_unstable();
        chosen
    }

    /// The next `(catalog object index, label)` this strategy would fetch
    /// for `query` at `now`, or `None` when nothing (useful) remains.
    ///
    /// `candidates` must be the set previously computed by
    /// [`Strategy::candidates`] for this query. `priors` supplies the
    /// short-circuit probabilities (static or learned) used in the
    /// §III-A ratios; `channel` models the bottleneck for
    /// validity-feasibility ordering.
    #[allow(clippy::too_many_arguments)]
    pub fn next_request(
        self,
        query: &QueryState,
        candidates: &[usize],
        catalog: &Catalog,
        origin: NodeId,
        topology: &Topology,
        now: SimTime,
        channel: Channel,
        priors: &Priors<'_>,
    ) -> Option<(usize, Label)> {
        if self.is_decision_driven() {
            self.next_decision_driven(
                query, candidates, catalog, origin, topology, now, channel, priors,
            )
        } else {
            self.next_baseline(query, candidates, catalog, origin, topology, now)
        }
    }

    fn next_baseline(
        self,
        query: &QueryState,
        candidates: &[usize],
        catalog: &Catalog,
        origin: NodeId,
        topology: &Topology,
        now: SimTime,
    ) -> Option<(usize, Label)> {
        let unknown = query.unknown_labels(now);
        if unknown.is_empty() {
            return None;
        }
        let mut order: Vec<usize> = candidates.to_vec();
        if self == Strategy::LowestCostFirst {
            order.sort_by_key(|&i| (catalog.get(i).size, i));
        }
        // Under faults, prefer providers we can actually route to; a stable
        // partition keeps the original order when everything is reachable.
        order.sort_by_key(|&i| !Self::is_reachable(i, catalog, origin, topology));
        for idx in order {
            let spec = catalog.get(idx);
            if let Some(label) = spec.covers.iter().find(|l| unknown.contains(*l)) {
                return Some((idx, label.clone()));
            }
        }
        None
    }

    #[allow(clippy::too_many_arguments)]
    fn next_decision_driven(
        self,
        query: &QueryState,
        candidates: &[usize],
        catalog: &Catalog,
        origin: NodeId,
        topology: &Topology,
        now: SimTime,
        channel: Channel,
        priors: &Priors<'_>,
    ) -> Option<(usize, Label)> {
        let relevant = query.relevant_labels(now);
        if relevant.is_empty() {
            return None;
        }
        // Cheapest (by network cost) candidate provider per relevant label,
        // preferring sources that are currently reachable: when a fault has
        // cut off a provider, an alternate (reachable) source is selected
        // instead; only when *no* provider is reachable does the original
        // choice stand (the fetch then stalls until routes heal or the
        // deadline passes). Under learned priors the cost is divided by
        // the source's reliability score — the expected bytes including
        // retries — so flaky providers lose ties they would otherwise win;
        // with fixed priors every score is 1.0 and the original integer
        // ordering is preserved exactly.
        let pick_cheapest = |pool: &[usize]| -> Option<usize> {
            match priors {
                Priors::Fixed(_) => pool
                    .iter()
                    .copied()
                    .min_by_key(|&i| (Self::effective_cost(i, catalog, origin, topology), i)),
                Priors::Learned(_) => pool.iter().copied().min_by(|&a, &b| {
                    let weighted = |i: usize| {
                        Self::effective_cost(i, catalog, origin, topology) as f64
                            / priors.reliability(catalog.get(i).source).max(0.05)
                    };
                    weighted(a).total_cmp(&weighted(b)).then(a.cmp(&b))
                }),
            }
        };
        let provider = |label: &Label| -> Option<usize> {
            let covering: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| catalog.get(i).covers.iter().any(|l| l == label))
                .collect();
            let reachable: Vec<usize> = covering
                .iter()
                .copied()
                .filter(|&i| Self::is_reachable(i, catalog, origin, topology))
                .collect();
            pick_cheapest(&reachable).or_else(|| pick_cheapest(&covering))
        };

        // Rank live terms by expected truth per expected cost over their
        // *remaining* unknown labels, costed at object granularity: one
        // fetch of a panorama resolves every label it covers. Entries are
        // (object index, first covered label, planning item).
        type TermEntry = (usize, Label, RetrievalItem);
        let mut best_term: Option<(f64, usize, Vec<TermEntry>)> = None;
        for ti in query.expr.live_terms(&query.assignment, now) {
            let term = &query.expr.terms()[ti];
            let unknowns: Vec<Label> = term
                .labels()
                .filter(|l| !query.assignment.value_at(l, now).is_known())
                .cloned()
                .collect();
            if unknowns.is_empty() {
                continue;
            }
            // Group unknown labels by their chosen provider object.
            let mut by_object: std::collections::BTreeMap<usize, Vec<Label>> =
                std::collections::BTreeMap::new();
            let mut unprovided = false;
            for l in &unknowns {
                match provider(l) {
                    Some(idx) => by_object.entry(idx).or_default().push(l.clone()),
                    None => {
                        unprovided = true;
                        break;
                    }
                }
            }
            if unprovided {
                // Some label has no provider among candidates: the term can
                // never complete; deprioritize it entirely.
                continue;
            }
            let entries: Vec<TermEntry> = by_object
                .into_iter()
                .map(|(idx, labels)| {
                    let spec = catalog.get(idx);
                    // One fetch decides all grouped labels; the fetch
                    // "succeeds" (does not short-circuit the term) only if
                    // all of them come back true. Cost is the bytes the
                    // fetch puts on the network (size × hops).
                    let p = priors.group_prob(&spec.name, &labels);
                    let item = RetrievalItem::new(
                        spec.name.to_string(),
                        Cost::from_bytes(Self::effective_cost(idx, catalog, origin, topology)),
                        spec.validity,
                    )
                    .with_prob(Probability::clamped(p));
                    (idx, labels[0].clone(), item)
                })
                .collect();
            let items: Vec<RetrievalItem> = entries.iter().map(|(_, _, it)| it.clone()).collect();
            let p = and_truth_prob(&items);
            let e = expected_and_cost(&items).max(1.0);
            let ratio = p / e;
            let better = match &best_term {
                None => true,
                Some((r, bi, _)) => ratio > *r + 1e-15 || (ratio >= *r - 1e-15 && ti < *bi),
            };
            if better {
                best_term = Some((ratio, ti, entries));
            }
        }
        let (_, _, entries) = best_term?;

        // Within the term: validity-feasible short-circuit greedy (ref [3])
        // over the distinct objects.
        let items: Vec<RetrievalItem> = entries.iter().map(|(_, _, it)| it.clone()).collect();
        let budget = query.deadline_at.saturating_since(now);
        let ordered = greedy_validity_shortcircuit(&items, channel, now, budget);
        let first = ordered.first()?;
        entries
            .iter()
            .find(|(_, _, it)| it.label == first.label)
            .map(|(idx, label, _)| (*idx, label.clone()))
    }

    /// Whether a strategy performs short-circuit pruning: used by tests.
    pub fn prunes(self, query: &QueryState, now: SimTime) -> bool {
        self.is_decision_driven()
            && query.relevant_labels(now).len() < query.unknown_labels(now).len()
    }
}

impl core::fmt::Display for Strategy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.code())
    }
}

/// Parses a strategy code (`cmp`, `slt`, `lcf`, `lvf`, `lvfl`).
impl core::str::FromStr for Strategy {
    type Err = String;
    fn from_str(s: &str) -> Result<Strategy, String> {
        match s {
            "cmp" => Ok(Strategy::Comprehensive),
            "slt" => Ok(Strategy::SelectedSources),
            "lcf" => Ok(Strategy::LowestCostFirst),
            "lvf" => Ok(Strategy::Lvf),
            "lvfl" => Ok(Strategy::LvfLabelShare),
            other => Err(format!("unknown strategy: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::QueryId;
    use dde_logic::dnf::{Dnf, Term};
    use dde_logic::time::SimDuration;
    use dde_netsim::topology::NodeId;
    use dde_workload::catalog::ObjectSpec;
    use dde_workload::world::DynamicsClass;

    fn spec(name: &str, covers: &[&str], size: u64, validity_s: u64) -> ObjectSpec {
        ObjectSpec {
            name: name.parse().unwrap(),
            covers: covers.iter().map(|s| Label::new(*s)).collect(),
            size,
            source: NodeId(0),
            class: DynamicsClass::Slow,
            validity: SimDuration::from_secs(validity_s),
        }
    }

    /// All test objects live at NodeId(0) and the querier is NodeId(0):
    /// every hop distance is 0 → effective cost = size, preserving the
    /// size-based expectations below.
    fn topo() -> Topology {
        Topology::line(1, dde_netsim::topology::LinkSpec::mbps1())
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(spec("/cam/a1", &["a"], 500_000, 600)); // 0
        c.add(spec("/cam/a2", &["a"], 200_000, 600)); // 1: cheaper provider of a
        c.add(spec("/cam/b", &["b"], 300_000, 30)); // 2: volatile
        c.add(spec("/cam/cd", &["c", "d"], 400_000, 600)); // 3: panorama
        c.add(spec("/cam/c", &["c"], 350_000, 600)); // 4
        c.add(spec("/cam/d", &["d"], 350_000, 600)); // 5
        c
    }

    fn query(expr: Dnf) -> QueryState {
        QueryState::new(QueryId(1), expr, SimTime::ZERO, SimDuration::from_secs(120))
    }

    fn labels(q: &QueryState) -> BTreeSet<Label> {
        q.expr.labels()
    }

    #[test]
    fn codes_round_trip() {
        for s in Strategy::ALL {
            assert_eq!(s.code().parse::<Strategy>().unwrap(), s);
        }
        assert!("nope".parse::<Strategy>().is_err());
        assert_eq!(Strategy::Lvf.to_string(), "lvf");
    }

    #[test]
    fn flags() {
        assert!(!Strategy::Comprehensive.source_selected());
        assert!(Strategy::SelectedSources.source_selected());
        assert!(Strategy::LvfLabelShare.label_sharing());
        assert!(!Strategy::Lvf.label_sharing());
        assert!(Strategy::Lvf.is_decision_driven());
        assert!(!Strategy::LowestCostFirst.is_decision_driven());
    }

    #[test]
    fn cmp_takes_all_providers() {
        let c = catalog();
        let q = query(Dnf::from_terms(vec![Term::all_of(["a", "b"])]));
        let cands = Strategy::Comprehensive.candidates(&labels(&q), &c, NodeId(0), &topo());
        // Both providers of `a` plus the provider of `b`.
        assert_eq!(cands, vec![0, 1, 2]);
    }

    #[test]
    fn selected_sources_drop_redundancy() {
        let c = catalog();
        let q = query(Dnf::from_terms(vec![Term::all_of(["a", "b"])]));
        let cands = Strategy::SelectedSources.candidates(&labels(&q), &c, NodeId(0), &topo());
        // Cover picks the cheap provider of a (idx 1) and b (idx 2).
        assert_eq!(cands, vec![1, 2]);
    }

    #[test]
    fn cover_exploits_multi_label_objects() {
        let c = catalog();
        let q = query(Dnf::from_terms(vec![Term::all_of(["c", "d"])]));
        let cands = Strategy::SelectedSources.candidates(&labels(&q), &c, NodeId(0), &topo());
        // Panorama (400 KB for both) beats two singles (700 KB).
        assert_eq!(cands, vec![3]);
    }

    #[test]
    fn lcf_orders_by_size() {
        let c = catalog();
        let mut q = query(Dnf::from_terms(vec![Term::all_of(["a", "b"])]));
        let cands = Strategy::LowestCostFirst.candidates(&labels(&q), &c, NodeId(0), &topo());
        let (idx, label) = Strategy::LowestCostFirst
            .next_request(
                &q,
                &cands,
                &c,
                NodeId(0),
                &topo(),
                SimTime::ZERO,
                Channel::mbps1(),
                &Priors::Fixed(0.8),
            )
            .unwrap();
        // Cheapest candidate first: /cam/a2 (200 KB).
        assert_eq!(idx, 1);
        assert_eq!(label.as_str(), "a");
        // Once `a` is known, moves on to `b`.
        q.record_label(
            &Label::new("a"),
            true,
            SimTime::ZERO,
            SimDuration::from_secs(600),
        );
        let (idx, label) = Strategy::LowestCostFirst
            .next_request(
                &q,
                &cands,
                &c,
                NodeId(0),
                &topo(),
                SimTime::from_secs(1),
                Channel::mbps1(),
                &Priors::Fixed(0.8),
            )
            .unwrap();
        assert_eq!(idx, 2);
        assert_eq!(label.as_str(), "b");
    }

    #[test]
    fn baseline_ignores_decision_structure() {
        let c = catalog();
        // (a & b) | (c & d); a already false — a is irrelevant now, but so
        // is b; baselines still chase b.
        let mut q = query(Dnf::from_terms(vec![
            Term::all_of(["a", "b"]),
            Term::all_of(["c", "d"]),
        ]));
        q.record_label(
            &Label::new("a"),
            false,
            SimTime::ZERO,
            SimDuration::from_secs(600),
        );
        let now = SimTime::from_secs(1);
        let cands = Strategy::Comprehensive.candidates(&labels(&q), &c, NodeId(0), &topo());
        let (idx, _) = Strategy::Comprehensive
            .next_request(
                &q,
                &cands,
                &c,
                NodeId(0),
                &topo(),
                now,
                Channel::mbps1(),
                &Priors::Fixed(0.8),
            )
            .unwrap();
        // First candidate in catalog order covering an unknown: /cam/b.
        assert_eq!(idx, 2);
        assert!(Strategy::Lvf.prunes(&q, now));
        assert!(!Strategy::Comprehensive.prunes(&q, now));
    }

    #[test]
    fn decision_driven_skips_falsified_term() {
        let c = catalog();
        let mut q = query(Dnf::from_terms(vec![
            Term::all_of(["a", "b"]),
            Term::all_of(["c", "d"]),
        ]));
        q.record_label(
            &Label::new("a"),
            false,
            SimTime::ZERO,
            SimDuration::from_secs(600),
        );
        let now = SimTime::from_secs(1);
        let cands = Strategy::Lvf.candidates(&labels(&q), &c, NodeId(0), &topo());
        let (_, label) = Strategy::Lvf
            .next_request(
                &q,
                &cands,
                &c,
                NodeId(0),
                &topo(),
                now,
                Channel::mbps1(),
                &Priors::Fixed(0.8),
            )
            .unwrap();
        // b is irrelevant; must pick from {c, d}.
        assert!(label.as_str() == "c" || label.as_str() == "d");
    }

    #[test]
    fn decision_driven_defers_volatile_labels() {
        let c = catalog();
        // Single term with a stable label (600 s validity) and a volatile
        // one (30 s). The hybrid order fetches the stable one first.
        let q = query(Dnf::from_terms(vec![Term::all_of(["a", "b"])]));
        let cands = Strategy::Lvf.candidates(&labels(&q), &c, NodeId(0), &topo());
        let (_, label) = Strategy::Lvf
            .next_request(
                &q,
                &cands,
                &c,
                NodeId(0),
                &topo(),
                SimTime::ZERO,
                Channel::mbps1(),
                &Priors::Fixed(0.8),
            )
            .unwrap();
        assert_eq!(label.as_str(), "a", "stable label should be fetched first");
    }

    #[test]
    fn decision_driven_prefers_cheap_likely_term() {
        let c = catalog();
        // Route 1 costs ~800 KB ((a cheap) + b), route 2 via panorama costs
        // 400 KB — same truth prior, so route 2 has better P/E.
        let q = query(Dnf::from_terms(vec![
            Term::all_of(["a", "b"]),
            Term::all_of(["c", "d"]),
        ]));
        let cands = Strategy::Lvf.candidates(&labels(&q), &c, NodeId(0), &topo());
        let (idx, _) = Strategy::Lvf
            .next_request(
                &q,
                &cands,
                &c,
                NodeId(0),
                &topo(),
                SimTime::ZERO,
                Channel::mbps1(),
                &Priors::Fixed(0.8),
            )
            .unwrap();
        assert_eq!(
            idx, 3,
            "should start on the cheaper second term via panorama"
        );
    }

    #[test]
    fn no_request_once_decided_labels_known() {
        let c = catalog();
        let mut q = query(Dnf::from_terms(vec![Term::all_of(["a"])]));
        q.record_label(
            &Label::new("a"),
            true,
            SimTime::ZERO,
            SimDuration::from_secs(600),
        );
        let now = SimTime::from_secs(1);
        for s in Strategy::ALL {
            let cands = s.candidates(&labels(&q), &c, NodeId(0), &topo());
            assert!(
                s.next_request(
                    &q,
                    &cands,
                    &c,
                    NodeId(0),
                    &topo(),
                    now,
                    Channel::mbps1(),
                    &Priors::Fixed(0.8),
                )
                .is_none(),
                "{s} should have nothing to fetch"
            );
        }
    }

    #[test]
    fn unprovided_label_does_not_block_other_terms() {
        let mut c = Catalog::new();
        c.add(spec("/cam/c", &["c"], 100_000, 600));
        // Term 0 references `ghost` (no provider); term 1 is fetchable.
        let q = query(Dnf::from_terms(vec![
            Term::all_of(["ghost"]),
            Term::all_of(["c"]),
        ]));
        let cands = Strategy::Lvf.candidates(&labels(&q), &c, NodeId(0), &topo());
        let (idx, label) = Strategy::Lvf
            .next_request(
                &q,
                &cands,
                &c,
                NodeId(0),
                &topo(),
                SimTime::ZERO,
                Channel::mbps1(),
                &Priors::Fixed(0.8),
            )
            .unwrap();
        assert_eq!(idx, 0);
        assert_eq!(label.as_str(), "c");
    }
}

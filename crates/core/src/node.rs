//! The Athena node protocol (§VI).
//!
//! Each node implements the paper's six functions over the simulated
//! network:
//!
//! - `Query_Init` / `Query_Recv` — [`Protocol::on_external`] creates local
//!   query state, floods the Boolean expression to neighbors, and starts the
//!   decision-driven (or baseline) retrieval loop; receivers of the flood
//!   may *prefetch* (source-side push, exactly the Fig. 1 pattern);
//! - `Request_Send` / `Request_Recv` — hop-by-hop object requests with a
//!   Pending Interest Table for duplicate suppression, served from caches
//!   when a fresh copy (or, under `lvfl`, a fresh trusted label) exists;
//! - `Data_Send` / `Data_Recv` — evidence flows back along interests,
//!   cached at every hop; at the query origin an annotator turns evidence
//!   into label values; under `lvfl` those labels are shared back toward the
//!   data source (§VI-D).

use crate::annotate::{Annotator, TrustPolicy};
use crate::msg::{AthenaMsg, QueryId, RequestKind};
use crate::object::EvidenceObject;
use crate::query::{Outstanding, QueryOutcome, QueryState, QueryStatus};
use crate::strategy::{Priors, Strategy};
use dde_logic::label::Label;
use dde_logic::meta::{ConditionMeta, Cost, MetaTable, Probability};
use dde_logic::time::{SimDuration, SimTime};
use dde_naming::criticality::{Criticality, CriticalityMap};
use dde_naming::fib::Pit;
use dde_naming::name::Name;
use dde_naming::store::ContentStore;
use dde_netsim::sim::{Context, Protocol};
use dde_netsim::topology::{NodeId, Topology};
use dde_obs::EventKind;
use dde_sched::adaptive::{
    prefix_of, AdaptiveConfig, AdaptiveState, AdmissionPolicy, AdmissionVerdict,
};
use dde_sched::explain::{explain_dnf_plan, summarize_dnf_plan};
use dde_sched::item::Channel;
use dde_sched::shortcircuit::plan_dnf;
use dde_workload::catalog::Catalog;
use dde_workload::scenario::QueryInstance;
use dde_workload::world::WorldModel;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Timer tag for the housekeeping tick.
const TICK_TAG: u64 = 0;

/// Corroboration votes for one (query, label): source → (judgment,
/// sampled_at, validity).
type VoteSet = BTreeMap<NodeId, (bool, SimTime, SimDuration)>;

/// Who registered a pending interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Requester {
    /// A query on this node.
    Local,
    /// A neighbor that forwarded a request to us.
    Neighbor(NodeId),
}

/// A label value cached at a node, with the annotator's signature.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedLabel {
    /// The judged value.
    pub value: bool,
    /// Sampling time of the underlying evidence.
    pub sampled_at: SimTime,
    /// Validity of the underlying evidence.
    pub validity: SimDuration,
    /// Who judged it.
    pub annotator: NodeId,
    /// The evidence it is based on.
    pub based_on: Name,
}

impl CachedLabel {
    /// Whether the cached value is still fresh at `now`.
    pub fn is_fresh_at(&self, now: SimTime) -> bool {
        now <= self.sampled_at.saturating_add(self.validity)
    }
}

/// Node configuration shared by every node in a run.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// The retrieval strategy under evaluation.
    pub strategy: Strategy,
    /// Whether sources push prefetches on hearing query announcements
    /// (`None` = off; prefetch pushes ride as background traffic).
    pub prefetch: Option<bool>,
    /// Trust policy for shared labels.
    pub trust: TrustPolicy,
    /// Content-store capacity per node, bytes.
    pub cache_capacity: u64,
    /// Prior probability a condition is true (drives short-circuit ratios).
    pub prob_true_prior: f64,
    /// Bottleneck bandwidth assumed by the retrieval planner.
    pub planning_bandwidth_bps: u64,
    /// Re-issue an unanswered fetch after this long.
    pub retry_timeout: SimDuration,
    /// Housekeeping tick period.
    pub tick: SimDuration,
    /// Lifetime of a pending interest.
    pub interest_lifetime: SimDuration,
    /// Minimum remaining validity a cached object/label must have to be
    /// served to a *remote* requester. Serving a nearly-expired copy wastes
    /// bandwidth: it goes stale before the requester's decision completes
    /// and triggers a refetch.
    pub serve_headroom: SimDuration,
    /// Approximate name substitution (§V-A): when the exact object is not
    /// cached, serve the fresh cached object sharing at least this many
    /// leading name components. `None` disables substitution.
    pub approx_min_shared: Option<usize>,
    /// Criticality classes over the name space (§V-C): objects in a
    /// [`Criticality::Critical`] region are exempt from approximation.
    pub criticality: CriticalityMap,
    /// How many independent pieces of evidence must corroborate a label
    /// before it is accepted (§IV-B, "Noisy sensor data"); 1 = accept the
    /// first annotation. When fewer distinct providers exist, the node
    /// accepts the majority of whatever it could gather.
    pub corroboration: usize,
    /// Sub-additive utility triage for *background* traffic (§V-B): a
    /// prefetch push is dropped at a hop when its marginal utility
    /// `1 − max_similarity` against recently pushed names on that link
    /// falls below this threshold. `None` disables triage.
    pub triage_threshold: Option<f64>,
    /// Whether a crashed node loses its content store and label cache on
    /// recovery (RAM-backed caches) or keeps them (flash-backed caches).
    /// Volatile forwarding state — PIT, prefetch queue, in-flight fetch
    /// bookkeeping — is always lost.
    pub crash_wipes_cache: bool,
    /// Online adaptive planning: when set, the node re-parameterizes its
    /// §III-A planners from per-node estimators learned off the trace-visible
    /// event stream, and (if the config carries an [`AdmissionPolicy`])
    /// gates query admission under overload. `None` — the default —
    /// reproduces the static planners byte-for-byte.
    pub adaptive: Option<AdaptiveConfig>,
}

impl NodeConfig {
    /// Defaults for `strategy` matching the evaluation setup.
    pub fn new(strategy: Strategy) -> NodeConfig {
        NodeConfig {
            strategy,
            prefetch: None,
            trust: TrustPolicy::TrustAll,
            cache_capacity: 64_000_000,
            prob_true_prior: 0.8,
            planning_bandwidth_bps: 1_000_000,
            retry_timeout: SimDuration::from_secs(30),
            tick: SimDuration::from_millis(250),
            interest_lifetime: SimDuration::from_secs(60),
            serve_headroom: SimDuration::from_secs(15),
            approx_min_shared: None,
            criticality: CriticalityMap::new(),
            corroboration: 1,
            triage_threshold: None,
            crash_wipes_cache: false,
            adaptive: None,
        }
    }

    /// Whether prefetch is on (defaults to off — the headline figures
    /// compare pure retrieval protocols; the prefetch ablation and the
    /// Fig. 1 walkthrough enable it explicitly).
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetch.unwrap_or(false)
    }
}

/// Immutable state shared by all nodes of one run.
#[derive(Debug)]
pub struct SharedWorld {
    /// The advertised-object catalog (the lookup service of refs \[8, 9]).
    pub catalog: Catalog,
    /// Ground truth.
    pub world: WorldModel,
    /// Node configuration.
    pub config: NodeConfig,
}

/// Per-node counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Requests answered from the local content store.
    pub cache_hits: u64,
    /// Requests answered with a shared label instead of data.
    pub label_hits: u64,
    /// Labels resolved by sampling a co-located sensor (no network).
    pub local_samples: u64,
    /// Requests answered with an approximate (same-prefix) substitute.
    pub approx_hits: u64,
    /// Prefetch pushes initiated (this node as source).
    pub prefetch_pushes: u64,
    /// Query announcements relayed.
    pub announces_relayed: u64,
    /// Foreground requests forwarded toward sources.
    pub requests_forwarded: u64,
    /// Data messages forwarded toward requesters.
    pub data_forwarded: u64,
    /// Label shares forwarded onward.
    pub labels_forwarded: u64,
    /// Background pushes dropped by information-utility triage (§V-B).
    pub triage_drops: u64,
    /// Queries shed by the admission gate (never planned; they run to
    /// their deadline and count as deliberate misses).
    pub admission_shed: u64,
    /// Admission-gate deferral decisions (one query may defer repeatedly).
    pub admission_deferred: u64,
}

/// External stimuli delivered to an Athena node.
#[derive(Debug, Clone)]
pub enum AthenaEvent {
    /// A user issues a decision query here (`Query_Init`).
    Issue(QueryInstance),
    /// Announce an upcoming query without issuing it (§VIII anticipation:
    /// "anticipating what information is needed next … gives the system
    /// more time to acquire it before it is actually used"). The network
    /// hears the decision structure early and can prefetch.
    AnnounceOnly(QueryInstance),
}

impl From<QueryInstance> for AthenaEvent {
    fn from(inst: QueryInstance) -> AthenaEvent {
        AthenaEvent::Issue(inst)
    }
}

/// A queued source-side prefetch push.
#[derive(Debug, Clone)]
struct PushTask {
    object_idx: usize,
    origin: NodeId,
    qid: QueryId,
    deadline_at: SimTime,
}

/// The ledger attribution of a request's query id: synthetic re-forwarded
/// requests (`u64::MAX`, see [`AthenaNode::reforward_request`]) have no
/// owning decision.
fn qid_attr(qid: QueryId) -> Option<u64> {
    (qid.0 != u64::MAX).then_some(qid.0)
}

/// Same attribution as the observational `for_query` tag carried on reply
/// messages.
fn qid_tag(qid: QueryId) -> Option<QueryId> {
    (qid.0 != u64::MAX).then_some(qid)
}

/// Admission-gate state for one locally issued query (adaptive mode).
#[derive(Debug, Clone, Copy, PartialEq)]
enum AdmissionState {
    /// Retrieval proceeds normally.
    Admitted,
    /// Waiting: the gate re-evaluates once `until` passes.
    Deferred {
        /// When the gate looks again.
        until: SimTime,
        /// How often this query has been deferred so far.
        tries: u32,
    },
    /// Never planned; the query runs to its deadline unanswered.
    Shed,
}

/// The gate's latest predicted cost and ruling for one query.
#[derive(Debug, Clone, Copy, PartialEq)]
struct AdmissionRecord {
    predicted: u64,
    state: AdmissionState,
}

/// One Athena node.
#[derive(Debug)]
pub struct AthenaNode {
    shared: Arc<SharedWorld>,
    annotator: Arc<dyn Annotator + Send + Sync>,
    /// Locally originated queries.
    queries: BTreeMap<QueryId, QueryState>,
    /// Candidate object indices + label set per local query.
    plans: BTreeMap<QueryId, (Vec<usize>, BTreeSet<Label>)>,
    /// Announcements already seen (flood dedup).
    seen_announces: BTreeSet<QueryId>,
    /// Object cache.
    content: ContentStore<EvidenceObject>,
    /// Label cache (the network-side label store of §VI-D).
    labels: BTreeMap<Label, CachedLabel>,
    /// Pending interests: name → who wants it for which (query, labels).
    pit: Pit<Requester, (QueryId, Vec<Label>)>,
    /// Background prefetch queue (processed when foreground is idle).
    prefetch_queue: VecDeque<PushTask>,
    /// Last push per (object, next hop), for dedup.
    recent_pushes: BTreeMap<(Name, NodeId), SimTime>,
    /// Recently forwarded background names per next hop (for §V-B triage).
    recent_bg: BTreeMap<NodeId, Vec<(Name, SimTime)>>,
    /// Corroboration votes per (query, label): evidence *source* →
    /// judgment. Keyed by source node, not object, so that two views from
    /// the same (possibly compromised) sensor host count once (§IV-B).
    votes: BTreeMap<(QueryId, Label), VoteSet>,
    /// Reliability profile per evidence *source*: (agreed, disagreed) with
    /// the corroborated majority (§IV-B annotator feedback).
    reliability: BTreeMap<NodeId, (u64, u64)>,
    /// Whether a tick timer is armed.
    tick_armed: bool,
    /// Local queries whose terminal trace event has been emitted (so
    /// resolve/miss events fire exactly once per query).
    emitted_final: BTreeSet<QueryId>,
    /// Online estimator state (`None` = static planning). Built from
    /// [`NodeConfig::adaptive`]; updated only at trace-visible events so
    /// observed, unobserved, and sharded runs evolve identically.
    adaptive: Option<AdaptiveState>,
    /// Admission-gate rulings per local query (adaptive mode only;
    /// admitted queries without a gate decision are simply absent).
    admission: BTreeMap<QueryId, AdmissionRecord>,
    /// Evidence bytes delivered to this node per local query — the
    /// actual-cost signal the load estimator folds at decision time.
    ingress_bytes: BTreeMap<QueryId, u64>,
    /// Local queries whose actual bytes have been folded into the load
    /// estimator (each decision counts once).
    load_folded: BTreeSet<QueryId>,
    /// Counters.
    pub stats: NodeStats,
}

impl AthenaNode {
    /// Creates a node.
    pub fn new(
        shared: Arc<SharedWorld>,
        annotator: Arc<dyn Annotator + Send + Sync>,
    ) -> AthenaNode {
        let cache_capacity = shared.config.cache_capacity;
        let adaptive = shared
            .config
            .adaptive
            .map(|cfg| AdaptiveState::new(cfg, shared.config.prob_true_prior));
        AthenaNode {
            shared,
            annotator,
            queries: BTreeMap::new(),
            plans: BTreeMap::new(),
            seen_announces: BTreeSet::new(),
            content: ContentStore::new(cache_capacity),
            labels: BTreeMap::new(),
            pit: Pit::new(),
            prefetch_queue: VecDeque::new(),
            recent_pushes: BTreeMap::new(),
            recent_bg: BTreeMap::new(),
            votes: BTreeMap::new(),
            reliability: BTreeMap::new(),
            tick_armed: false,
            emitted_final: BTreeSet::new(),
            adaptive,
            admission: BTreeMap::new(),
            ingress_bytes: BTreeMap::new(),
            load_folded: BTreeSet::new(),
            stats: NodeStats::default(),
        }
    }

    /// The node's adaptive estimator state, when adaptive planning is on
    /// (for post-run inspection).
    pub fn adaptive_state(&self) -> Option<&AdaptiveState> {
        self.adaptive.as_ref()
    }

    /// The node's local queries (for post-run inspection).
    pub fn queries(&self) -> impl Iterator<Item = &QueryState> {
        self.queries.values()
    }

    /// The node's label cache (for post-run inspection).
    pub fn cached_labels(&self) -> impl Iterator<Item = (&Label, &CachedLabel)> {
        self.labels.iter()
    }

    /// The node's content store (for post-run inspection).
    pub fn content_store(&self) -> &ContentStore<EvidenceObject> {
        &self.content
    }

    /// The reliability profile this node has accumulated for an evidence
    /// source: `(agreements, disagreements)` with corroborated majorities.
    pub fn reliability_of(&self, source: NodeId) -> (u64, u64) {
        self.reliability.get(&source).copied().unwrap_or((0, 0))
    }

    /// Estimated source reliability in `[0, 1]` (1.0 when unobserved).
    pub fn reliability_score(&self, source: NodeId) -> f64 {
        let (agree, disagree) = self.reliability_of(source);
        if agree + disagree == 0 {
            1.0
        } else {
            agree as f64 / (agree + disagree) as f64
        }
    }

    fn catalog(&self) -> &Catalog {
        &self.shared.catalog
    }

    /// Whether a cached label is *usable* at `now`: fresh, with enough
    /// remaining validity to survive the rest of its query's term
    /// completion. A label about to expire triggers churn — the term that
    /// consumed it reopens before its remaining conditions resolve — so we
    /// require the lesser of twice the serve headroom and half the label's
    /// full validity.
    fn label_usable(&self, c: &CachedLabel, now: SimTime) -> bool {
        let margin = (self.shared.config.serve_headroom * 2).min(c.validity / 2);
        c.is_fresh_at(now + margin)
    }

    fn channel(&self) -> Channel {
        Channel::new(self.shared.config.planning_bandwidth_bps)
    }

    /// Renders the decision-driven ordering rationale for a query's
    /// expression via `dde-sched`'s short-circuit planner: per-label
    /// retrieval cost (cheapest provider from here), the configured truth
    /// prior, and the most conservative provider validity. Returns the
    /// rendered rationale plus the plan's predicted expected retrieval cost
    /// in bytes (§III-A), so the cost ledger can report predicted vs
    /// actual. Only called when the trace sink is enabled — this allocates
    /// freely.
    fn plan_rationale(
        &self,
        expr: &dde_logic::dnf::Dnf,
        ctx: &Context<'_, AthenaMsg>,
    ) -> (String, u64) {
        let meta = self.plan_meta(expr, ctx.node(), ctx.topology());
        let plan = plan_dnf(expr, &meta);
        let predicted = summarize_dnf_plan(&plan).expected_bytes_rounded();
        (explain_dnf_plan(&plan), predicted)
    }

    /// The planner's per-condition metadata from this node's vantage
    /// point: cheapest-provider retrieval cost, most conservative provider
    /// validity, and the short-circuit probability — learned per
    /// (name-prefix, condition) when adaptive planning is on, the run's
    /// static prior otherwise.
    fn plan_meta(&self, expr: &dde_logic::dnf::Dnf, me: NodeId, topology: &Topology) -> MetaTable {
        expr.labels()
            .into_iter()
            .map(|l| {
                let providers = self.catalog().providers_of(&l);
                let cost = providers
                    .iter()
                    .map(|&i| Strategy::effective_cost(i, self.catalog(), me, topology))
                    .min()
                    .unwrap_or(0);
                let validity = providers
                    .iter()
                    .map(|&i| self.catalog().get(i).validity)
                    .min()
                    .unwrap_or(SimDuration::MAX);
                let prob = match &self.adaptive {
                    // The cheapest provider's name keys the learned
                    // estimate — the same prefix the annotation feedback
                    // updates in `finalize_label`.
                    Some(state) => providers
                        .iter()
                        .min_by_key(|&&i| {
                            (Strategy::effective_cost(i, self.catalog(), me, topology), i)
                        })
                        .map(|&i| state.prob_for(&self.catalog().get(i).name.to_string(), &l))
                        .unwrap_or_else(|| state.truth.prior()),
                    None => self.shared.config.prob_true_prior,
                };
                let meta = ConditionMeta::new(Cost::from_bytes(cost), validity)
                    .with_prob(Probability::clamped(prob));
                (l, meta)
            })
            .collect()
    }

    /// Predicted expected retrieval cost in bytes (§III-A) of `expr` from
    /// here under the current estimators, for the admission gate. Unlike
    /// [`AthenaNode::plan_rationale`] this must also run on unobserved
    /// runs — admission decisions cannot depend on whether a sink is
    /// attached.
    fn predicted_plan_bytes(
        &self,
        expr: &dde_logic::dnf::Dnf,
        me: NodeId,
        topology: &Topology,
    ) -> u64 {
        let meta = self.plan_meta(expr, me, topology);
        summarize_dnf_plan(&plan_dnf(expr, &meta)).expected_bytes_rounded()
    }

    /// The first (OR-term, condition) coordinates of `label` in `qid`'s
    /// expression, for trace attribution. `(None, None)` when the query is
    /// not local or the label does not appear.
    fn locate_predicate(&self, qid: QueryId, label: &Label) -> (Option<u32>, Option<u32>) {
        let Some(q) = self.queries.get(&qid) else {
            return (None, None);
        };
        for (ti, term) in q.expr.terms().iter().enumerate() {
            if let Some(ci) = term.literals().position(|lit| lit.label() == label) {
                return (Some(ti as u32), Some(ci as u32));
            }
        }
        (None, None)
    }

    /// Emits a terminal trace event (`query-resolved` / `query-missed`) for
    /// every local query that reached a final status since the last call.
    /// Idempotent per query.
    fn emit_query_outcomes(&mut self, ctx: &mut Context<'_, AthenaMsg>) {
        if !ctx.obs_enabled() {
            return;
        }
        let newly: Vec<(QueryId, QueryStatus, SimTime)> = self
            .queries
            .iter()
            .filter(|(qid, q)| q.status.is_final() && !self.emitted_final.contains(qid))
            .map(|(qid, q)| (*qid, q.status, q.issued_at))
            .collect();
        for (qid, status, issued_at) in newly {
            self.emitted_final.insert(qid);
            match status {
                QueryStatus::Decided { outcome, at } => ctx.emit(EventKind::QueryResolved {
                    query: qid.0,
                    outcome: match outcome {
                        QueryOutcome::Viable(_) => "viable",
                        QueryOutcome::Infeasible => "infeasible",
                    },
                    latency_us: at.saturating_since(issued_at).as_micros(),
                }),
                QueryStatus::Missed => ctx.emit(EventKind::QueryMissed { query: qid.0 }),
                QueryStatus::Pending => {}
            }
        }
    }

    fn arm_tick(&mut self, ctx: &mut Context<'_, AthenaMsg>) {
        if !self.tick_armed {
            self.tick_armed = true;
            ctx.set_timer(self.shared.config.tick, TICK_TAG);
        }
    }

    fn has_pending_work(&self, now: SimTime) -> bool {
        let queries_pending = self.queries.values().any(|q| !q.status.is_final());
        let prefetch_pending = self.prefetch_queue.iter().any(|t| t.deadline_at > now);
        queries_pending || prefetch_pending
    }

    /// Samples a fresh instance of catalog object `idx`, with per-label
    /// epoch-aligned validity so that a fresh cached object always implies a
    /// still-accurate annotation.
    fn sample_object(&self, idx: usize, now: SimTime) -> EvidenceObject {
        let spec = self.catalog().get(idx);
        let mut obj = EvidenceObject::sample(spec, now);
        let effective = spec
            .covers
            .iter()
            .map(|l| self.shared.world.epoch_end(l, now).saturating_since(now))
            .min()
            .unwrap_or(spec.validity);
        obj.validity = effective.min(spec.validity);
        obj
    }

    /// Annotates `object` against every *local pending* query that
    /// references one of its labels. Under corroboration (§IV-B) the
    /// judgment is held as a *vote* until enough independent evidence
    /// agrees; otherwise it is accepted immediately, cached, and (under
    /// `lvfl`) shared toward the data source.
    fn annotate_object(&mut self, ctx: &mut Context<'_, AthenaMsg>, object: &EvidenceObject) {
        let now = ctx.now();
        // Which covered labels do local pending queries care about?
        let mut wanted: Vec<(QueryId, Label)> = Vec::new();
        for (qid, q) in &self.queries {
            if q.status.is_final() {
                continue;
            }
            let (_, label_set) = &self.plans[qid];
            for l in &object.covers {
                if label_set.contains(l) && !q.assignment.value_at(l, now).is_known() {
                    wanted.push((*qid, l.clone()));
                }
            }
        }
        if wanted.is_empty() {
            return;
        }
        let k = self.shared.config.corroboration.max(1);
        for (qid, label) in wanted {
            let Some(value) = self.annotator.annotate(object, &label, &self.shared.world) else {
                continue;
            };
            if k == 1 {
                self.finalize_label(
                    ctx,
                    qid,
                    &label,
                    value,
                    object.sampled_at,
                    object.validity,
                    &object.name,
                );
                continue;
            }
            // Corroboration: collect votes from distinct evidence *sources*.
            let entry = self.votes.entry((qid, label.clone())).or_default();
            entry.insert(object.source, (value, object.sampled_at, object.validity));
            let source_count = {
                let mut sources: Vec<NodeId> = self
                    .shared
                    .catalog
                    .providers_of(&label)
                    .iter()
                    .map(|&i| self.shared.catalog.get(i).source)
                    .collect();
                sources.sort_unstable();
                sources.dedup();
                sources.len().max(1)
            };
            if entry.len() >= k.min(source_count) {
                self.finalize_votes(ctx, qid, &label);
            }
        }
    }

    /// Resolves the corroboration votes for `(qid, label)` by majority,
    /// records the outcome, and feeds reliability profiles back (§IV-B:
    /// "annotators can offer feedback on the quality of individual
    /// inputs").
    fn finalize_votes(&mut self, ctx: &mut Context<'_, AthenaMsg>, qid: QueryId, label: &Label) {
        let Some(entry) = self.votes.remove(&(qid, label.clone())) else {
            return;
        };
        if entry.is_empty() {
            return;
        }
        // Reliability-weighted majority: votes from sources with a poor
        // track record count less, so learned profiles break ties in favor
        // of historically honest sensors (§IV-B).
        let mut weight_true = 0.0;
        let mut weight_false = 0.0;
        for (source, (v, _, _)) in &entry {
            let w = self.reliability_score(*source).max(0.05);
            if *v {
                weight_true += w;
            } else {
                weight_false += w;
            }
        }
        let majority = weight_true >= weight_false;
        // Freshness of the corroborated label: the most conservative of the
        // agreeing evidence (latest sample, its validity).
        let (_, sampled_at, validity) = entry
            .values()
            .filter(|(v, _, _)| *v == majority)
            .max_by_key(|(_, t, _)| *t)
            .copied()
            .expect("majority side is non-empty"); // lint: allow(panic) — the majority was computed from these votes
                                                   // Evidence attribution: name an object from an agreeing source.
        let agreeing_source = entry
            .iter()
            .find(|(_, (v, _, _))| *v == majority)
            .map(|(src, _)| *src)
            .expect("majority side is non-empty"); // lint: allow(panic) — the majority was computed from these votes
        let based_on = self
            .shared
            .catalog
            .providers_of(label)
            .iter()
            .map(|&i| self.shared.catalog.get(i))
            .find(|spec| spec.source == agreeing_source)
            .map(|spec| spec.name.clone())
            .expect("agreeing source provides the label"); // lint: allow(panic) — votes come only from providers of this label
        for (source, (v, _, _)) in &entry {
            let slot = self.reliability.entry(*source).or_insert((0, 0));
            if *v == majority {
                slot.0 += 1;
            } else {
                slot.1 += 1;
            }
        }
        self.finalize_label(ctx, qid, label, majority, sampled_at, validity, &based_on);
    }

    /// Records an accepted label value for one query, caches it, and (under
    /// `lvfl`) shares it toward the evidence's source.
    #[allow(clippy::too_many_arguments)]
    fn finalize_label(
        &mut self,
        ctx: &mut Context<'_, AthenaMsg>,
        qid: QueryId,
        label: &Label,
        value: bool,
        sampled_at: SimTime,
        validity: SimDuration,
        based_on: &Name,
    ) {
        let me = ctx.node();
        if ctx.obs_enabled() {
            let (term, cond) = self.locate_predicate(qid, label);
            ctx.emit(EventKind::Annotate {
                query: qid.0,
                label: label.to_string(),
                value,
                term,
                cond,
            });
        }
        // Adaptive feedback: the annotation outcome updates the truth
        // estimate for this evidence prefix, and reaching an annotation at
        // all counts as a successful retrieval from the evidence's source.
        // The update uses only what the `annotate` trace event carries, so
        // observed and unobserved runs evolve identically.
        if self.adaptive.is_some() {
            let source = self.shared.catalog.by_name(based_on).map(|s| s.source);
            if let Some(st) = self.adaptive.as_mut() {
                let rendered = based_on.to_string();
                let prefix = prefix_of(&rendered, st.config.prefix_len);
                st.truth.observe(prefix, label, value);
                if let Some(src) = source {
                    st.reliability.observe(src.0 as u32, true);
                }
            }
        }
        self.labels.insert(
            label.clone(),
            CachedLabel {
                value,
                sampled_at,
                validity,
                annotator: me,
                based_on: based_on.clone(),
            },
        );
        // The judgment is valid evidence for every local query that
        // references this label, not just `qid`.
        for (other_qid, q) in self.queries.iter_mut() {
            if q.status.is_final() {
                continue;
            }
            if self.plans[other_qid].1.contains(label)
                && (!q.assignment.value_at(label, ctx.now()).is_known() || *other_qid == qid)
            {
                q.record_label(label, value, sampled_at, validity);
                q.counters.labels_from_data += 1;
            }
        }
        if self.shared.config.strategy.label_sharing() {
            if let Some(spec) = self.shared.catalog.by_name(based_on) {
                if spec.source != me {
                    if let Some(hop) = ctx.next_hop_toward(spec.source) {
                        if ctx.obs_enabled() {
                            ctx.emit(EventKind::LabelShare {
                                label: label.to_string(),
                                value,
                                toward: hop.index() as u32,
                                query: Some(qid.0),
                            });
                        }
                        ctx.send(
                            hop,
                            AthenaMsg::LabelShare {
                                label: label.clone(),
                                value,
                                sampled_at,
                                validity,
                                annotator: me,
                                based_on: based_on.clone(),
                                for_query: Some(qid),
                            },
                        );
                    }
                }
            }
        }
    }

    /// Applies a (trusted) shared label to local queries and the cache.
    #[allow(clippy::too_many_arguments)]
    fn apply_shared_label(
        &mut self,
        label: &Label,
        value: bool,
        sampled_at: SimTime,
        validity: SimDuration,
        annotator: NodeId,
        based_on: &Name,
        now: SimTime,
    ) {
        if !self.shared.config.trust.accepts(annotator) {
            return;
        }
        let fresher = self
            .labels
            .get(label)
            .map(|c| sampled_at > c.sampled_at)
            .unwrap_or(true);
        if fresher {
            self.labels.insert(
                label.clone(),
                CachedLabel {
                    value,
                    sampled_at,
                    validity,
                    annotator,
                    based_on: based_on.clone(),
                },
            );
        }
        let expires = sampled_at.saturating_add(validity);
        if expires < now {
            return;
        }
        for (qid, q) in self.queries.iter_mut() {
            if q.status.is_final() {
                continue;
            }
            if self.plans[qid].1.contains(label) && !q.assignment.value_at(label, now).is_known() {
                q.record_label(label, value, sampled_at, validity);
                q.counters.labels_from_shares += 1;
            }
        }
    }

    /// Picks the cheapest provider of `label` whose *source node* has not
    /// voted yet, preferring sources whose reliability profile is not
    /// condemned (score < 0.3 after ≥ 4 observations), falling back to
    /// condemned ones only when nothing else remains.
    fn alternate_provider(&self, label: &Label, already_voted: &VoteSet) -> Option<usize> {
        let unused: Vec<usize> = self
            .shared
            .catalog
            .providers_of(label)
            .iter()
            .copied()
            .filter(|&i| !already_voted.contains_key(&self.shared.catalog.get(i).source))
            .collect();
        let trusted: Vec<usize> = unused
            .iter()
            .copied()
            .filter(|&i| {
                let source = self.shared.catalog.get(i).source;
                let (agree, disagree) = self.reliability_of(source);
                agree + disagree < 4 || self.reliability_score(source) >= 0.3
            })
            .collect();
        let pool = if trusted.is_empty() { unused } else { trusted };
        pool.into_iter()
            .min_by_key(|&i| (self.shared.catalog.get(i).size, i))
    }

    /// The retrieval loop: satisfy next requests locally when possible,
    /// otherwise send one fetch per query into the network.
    fn advance_queries(&mut self, ctx: &mut Context<'_, AthenaMsg>) {
        let now = ctx.now();
        let me = ctx.node();
        let strategy = self.shared.config.strategy;
        let channel = self.channel();
        let prior = self.shared.config.prob_true_prior;
        let retry = self.shared.config.retry_timeout;
        let qids: Vec<QueryId> = self.queries.keys().copied().collect();

        for qid in qids {
            // Admission gate (adaptive mode): shed queries never plan;
            // deferred ones wait out their re-evaluation time, then face
            // the gate again. The deadline check still runs below so a
            // gated query turns `Missed` on time.
            if !self.admission_allows(ctx, qid, now) {
                let q = self.queries.get_mut(&qid).expect("query exists"); // lint: allow(panic) — qid drawn from queries.keys(); local queries are never removed
                q.check(now);
                continue;
            }
            loop {
                let q = self.queries.get_mut(&qid).expect("query exists"); // lint: allow(panic) — qid drawn from queries.keys(); local queries are never removed
                if q.check(now).is_final() {
                    break;
                }
                // Waiting on an in-flight fetch that hasn't timed out?
                if q.outstanding.is_some() && !q.outstanding_timed_out(now, retry) {
                    break;
                }
                // A timed-out fetch falls through to re-plan; in adaptive
                // mode the unresponsive source's reliability estimate is
                // discounted first (the trace-visible `fetch-timeout`).
                let timed_out: Option<Name> = if self.adaptive.is_some() {
                    q.outstanding.as_ref().map(|o| o.name.clone())
                } else {
                    None
                };
                if let Some(name) = timed_out {
                    if let Some(spec) = self.shared.catalog.by_name(&name) {
                        let source = spec.source;
                        if let Some(st) = self.adaptive.as_mut() {
                            st.reliability.observe(source.0 as u32, false);
                        }
                        if ctx.obs_enabled() {
                            ctx.emit(EventKind::FetchTimeout {
                                query: qid.0,
                                name: name.to_string(),
                                source: source.index() as u32,
                            });
                        }
                    }
                }
                let (candidates, _) = self.plans.get(&qid).expect("plan exists"); // lint: allow(panic) — a plan is installed alongside every local query
                let priors = match self.adaptive.as_ref() {
                    Some(st) => Priors::Learned(st),
                    None => Priors::Fixed(prior),
                };
                let Some((idx, label)) = strategy.next_request(
                    self.queries.get(&qid).expect("query exists"), // lint: allow(panic) — qid drawn from queries.keys(); local queries are never removed
                    candidates,
                    self.catalog(),
                    me,
                    ctx.topology(),
                    now,
                    channel,
                    &priors,
                ) else {
                    break;
                };
                // Corroboration (§IV-B): if this provider already voted on
                // this label, fetch a *different* provider; if none remains,
                // accept the majority of the votes gathered so far.
                let k = self.shared.config.corroboration.max(1);
                let mut chosen = idx;
                if k > 1 {
                    if let Some(entry) = self.votes.get(&(qid, label.clone())) {
                        if entry.contains_key(&self.catalog().get(idx).source) {
                            let alt = self.alternate_provider(&label, entry);
                            match alt {
                                Some(a) => chosen = a,
                                None => {
                                    self.finalize_votes(ctx, qid, &label);
                                    continue;
                                }
                            }
                        }
                    }
                }
                let spec = self.catalog().get(chosen).clone();
                // Bookkeeping: chasing a label whose previous value expired.
                {
                    let q = self.queries.get_mut(&qid).expect("query exists"); // lint: allow(panic) — qid drawn from queries.keys(); local queries are never removed
                    if q.assignment.get(&label).is_some()
                        && !q.assignment.value_at(&label, now).is_known()
                    {
                        q.counters.label_expiries += 1;
                        q.assignment.clear(&label);
                    }
                }

                // 1. Fresh trusted cached label (shared by someone else)?
                if strategy.label_sharing() {
                    if let Some(c) = self.labels.get(&label) {
                        if self.label_usable(c, now)
                            && self.shared.config.trust.accepts(c.annotator)
                        {
                            let (value, sampled_at, validity) = (c.value, c.sampled_at, c.validity);
                            let q = self.queries.get_mut(&qid).expect("query exists"); // lint: allow(panic) — qid drawn from queries.keys(); local queries are never removed
                            q.record_label(&label, value, sampled_at, validity);
                            q.counters.labels_from_shares += 1;
                            continue;
                        }
                    }
                }
                // 2. Fresh object in the local content store?
                if let Some(stored) = self.content.get_fresh(&spec.name, now) {
                    let object = stored.value.clone();
                    self.annotate_object(ctx, &object);
                    let q = self.queries.get_mut(&qid).expect("query exists"); // lint: allow(panic) — qid drawn from queries.keys(); local queries are never removed
                    if !q.assignment.value_at(&label, now).is_known() && k == 1 {
                        // Annotation failed to resolve the label (cannot
                        // happen with covering objects); avoid spinning.
                        break;
                    }
                    // Under corroboration an unresolved label just gained a
                    // vote — loop to fetch the next distinct provider.
                    continue;
                }
                // 3. We are the source: sample locally, free of charge.
                if spec.source == me {
                    let object = self.sample_object(chosen, now);
                    self.content.insert(
                        &object.name.clone(),
                        object.clone(),
                        object.size,
                        object.sampled_at,
                        object.validity,
                    );
                    self.stats.local_samples += 1;
                    if ctx.obs_enabled() {
                        ctx.emit(EventKind::LocalSample {
                            name: object.name.to_string(),
                            query: Some(qid.0),
                        });
                        ctx.emit(EventKind::CacheStore {
                            name: object.name.to_string(),
                            bytes: object.size,
                            validity_us: object.validity.as_micros(),
                            query: Some(qid.0),
                        });
                    }
                    let q = self.queries.get_mut(&qid).expect("query exists"); // lint: allow(panic) — qid drawn from queries.keys(); local queries are never removed
                    q.counters.labels_from_local += 1;
                    self.annotate_object(ctx, &object);
                    continue;
                }
                // 4. Fetch over the network. The request carries every
                // still-unknown label this object can resolve, so that an
                // intermediate node may answer with labels only if it can
                // supply all of them.
                let q_ref = self.queries.get(&qid).expect("query exists"); // lint: allow(panic) — qid drawn from queries.keys(); local queries are never removed
                let mut wanted: Vec<Label> = spec
                    .covers
                    .iter()
                    .filter(|l| !q_ref.assignment.value_at(l, now).is_known())
                    .filter(|l| self.plans[&qid].1.contains(*l))
                    .cloned()
                    .collect();
                if !wanted.contains(&label) {
                    wanted.push(label.clone());
                }
                // The selected source may be unreachable right now (crashed
                // or partitioned away, with no alternate provider). Don't
                // register an interest or pretend a fetch is in flight:
                // leave the query pending so every tick re-plans until a
                // route exists again, then send immediately on recovery.
                let Some(hop) = ctx.next_hop_toward(spec.source) else {
                    break;
                };
                let first = self.pit.register(
                    &spec.name,
                    Requester::Local,
                    (qid, wanted.clone()),
                    now + self.shared.config.interest_lifetime,
                );
                let q = self.queries.get_mut(&qid).expect("query exists"); // lint: allow(panic) — qid drawn from queries.keys(); local queries are never removed
                q.outstanding = Some(Outstanding {
                    name: spec.name.clone(),
                    wanted: wanted.clone(),
                    sent_at: now,
                });
                q.counters.requests_sent += 1;
                if first {
                    if ctx.obs_enabled() {
                        let (term, cond) = self.locate_predicate(qid, &label);
                        ctx.emit(EventKind::RequestSend {
                            query: qid.0,
                            name: spec.name.to_string(),
                            hop: hop.index() as u32,
                            term,
                            cond,
                        });
                    }
                    ctx.send(
                        hop,
                        AthenaMsg::Request {
                            name: spec.name.clone(),
                            wanted,
                            qid,
                            origin: me,
                            kind: RequestKind::Fetch,
                        },
                    );
                }
                break;
            }
            // Final check after the burst of local progress.
            let q = self.queries.get_mut(&qid).expect("query exists"); // lint: allow(panic) — qid drawn from queries.keys(); local queries are never removed
            q.check(now);
        }
        self.fold_finished_into_load();
        self.emit_query_outcomes(ctx);
        if self.has_pending_work(now) {
            self.arm_tick(ctx);
        }
    }

    /// Re-evaluates the admission gate for `qid` inside the retrieval
    /// loop. Returns `false` while the query is shed or still deferred; a
    /// deferral that ripens re-faces the gate with *fresh* estimates, and
    /// an admission at that point emits the plan and floods the announce
    /// that were withheld at issue time.
    fn admission_allows(
        &mut self,
        ctx: &mut Context<'_, AthenaMsg>,
        qid: QueryId,
        now: SimTime,
    ) -> bool {
        let Some(rec) = self.admission.get(&qid).copied() else {
            return true;
        };
        let (until, tries) = match rec.state {
            AdmissionState::Admitted => return true,
            AdmissionState::Shed => return false,
            AdmissionState::Deferred { until, tries } => (until, tries),
        };
        if now < until {
            return false;
        }
        let Some(policy) = self.adaptive.as_ref().and_then(|s| s.config.admission) else {
            return true;
        };
        let Some(q) = self.queries.get(&qid) else {
            return true;
        };
        if q.status.is_final() {
            return false;
        }
        let me = ctx.node();
        let expr = q.expr.clone();
        let deadline_at = q.deadline_at;
        let predicted = self.predicted_plan_bytes(&expr, me, ctx.topology());
        let active = self.active_admitted();
        let slack = deadline_at.saturating_since(now);
        let verdict = match self.adaptive.as_ref() {
            Some(st) => policy.verdict(predicted, active, &st.load, slack, tries),
            None => AdmissionVerdict::Admit,
        };
        if ctx.obs_enabled() {
            ctx.emit(EventKind::Admission {
                query: qid.0,
                verdict: verdict.name(),
                predicted_bytes: predicted,
            });
        }
        match verdict {
            AdmissionVerdict::Admit => {
                self.admission.insert(
                    qid,
                    AdmissionRecord {
                        predicted,
                        state: AdmissionState::Admitted,
                    },
                );
                if ctx.obs_enabled() {
                    let (rationale, expected_bytes) = self.plan_rationale(&expr, ctx);
                    let candidates = self.plans.get(&qid).map(|(c, _)| c.len()).unwrap_or(0);
                    ctx.emit(EventKind::Plan {
                        query: qid.0,
                        strategy: self.shared.config.strategy.code(),
                        candidates: candidates as u64,
                        expected_bytes,
                        rationale,
                    });
                }
                let neighbors: Vec<NodeId> = ctx.topology().neighbors(me).collect();
                for nb in neighbors {
                    ctx.send(
                        nb,
                        AthenaMsg::QueryAnnounce {
                            qid,
                            origin: me,
                            expr: expr.clone(),
                            deadline_at,
                        },
                    );
                }
                true
            }
            AdmissionVerdict::Defer => {
                self.stats.admission_deferred += 1;
                self.admission.insert(
                    qid,
                    AdmissionRecord {
                        predicted,
                        state: AdmissionState::Deferred {
                            until: now + policy.defer_for,
                            tries: tries + 1,
                        },
                    },
                );
                false
            }
            AdmissionVerdict::Shed => {
                self.stats.admission_shed += 1;
                self.admission.insert(
                    qid,
                    AdmissionRecord {
                        predicted,
                        state: AdmissionState::Shed,
                    },
                );
                false
            }
        }
    }

    /// How many local queries are admitted and not yet decided — the
    /// `active` input of [`AdmissionPolicy::verdict`]. Deferred and shed
    /// queries consume no retrieval resources, so they do not count.
    fn active_admitted(&self) -> usize {
        self.queries
            .iter()
            .filter(|(qid, q)| {
                !q.status.is_final()
                    && self
                        .admission
                        .get(qid)
                        .is_none_or(|r| matches!(r.state, AdmissionState::Admitted))
            })
            .count()
    }

    /// Folds the accumulated actual bytes of freshly finalized local
    /// queries into the load estimator, once per query. Runs whether or
    /// not a sink is attached — observed and unobserved adaptive runs
    /// must evolve identically.
    fn fold_finished_into_load(&mut self) {
        if self.adaptive.is_none() {
            return;
        }
        let newly: Vec<QueryId> = self
            .queries
            .iter()
            .filter(|(qid, q)| q.status.is_final() && !self.load_folded.contains(qid))
            .map(|(qid, _)| *qid)
            .collect();
        for qid in newly {
            self.load_folded.insert(qid);
            let bytes = self.ingress_bytes.get(&qid).copied().unwrap_or(0);
            if let Some(st) = self.adaptive.as_mut() {
                st.load.observe_decision(bytes);
            }
        }
    }

    /// §V-B triage: whether a background push of `name` toward `hop` is
    /// redundant against what was recently pushed on that link. "Sending 10
    /// pictures of that same bridge … does not offer 10-times more
    /// information": marginal utility is `1 − max_similarity` to the
    /// recently delivered set, judged by shared name prefixes.
    fn triage_redundant(
        &mut self,
        ctx: &mut Context<'_, AthenaMsg>,
        hop: NodeId,
        name: &Name,
        now: SimTime,
    ) -> bool {
        let Some(threshold) = self.shared.config.triage_threshold else {
            return false;
        };
        const WINDOW: SimDuration = SimDuration::from_secs(60);
        let recent = self.recent_bg.entry(hop).or_default();
        recent.retain(|(_, at)| now.saturating_since(*at) < WINDOW);
        let max_sim = recent
            .iter()
            .map(|(n, _)| n.similarity(name))
            .fold(0.0, f64::max);
        if 1.0 - max_sim < threshold {
            self.stats.triage_drops += 1;
            if ctx.obs_enabled() {
                ctx.emit(EventKind::TriageDrop {
                    name: name.to_string(),
                    hop: hop.index() as u32,
                });
            }
            return true;
        }
        recent.push((name.clone(), now));
        false
    }

    /// Re-forwards a request toward `name`'s source after the in-flight
    /// request may have been consumed by a partial PIT satisfaction —
    /// restores the invariant that pending interests imply a request in
    /// flight.
    fn reforward_request(
        &mut self,
        ctx: &mut Context<'_, AthenaMsg>,
        name: &Name,
        wanted: Vec<Label>,
    ) {
        let Some(spec) = self.catalog().by_name(name) else {
            return;
        };
        let source = spec.source;
        if source == ctx.node() {
            return; // we are the source; data will be produced locally
        }
        if let Some(hop) = ctx.next_hop_toward(source) {
            self.stats.requests_forwarded += 1;
            ctx.send(
                hop,
                AthenaMsg::Request {
                    name: name.clone(),
                    wanted,
                    qid: QueryId(u64::MAX), // synthetic repair request
                    origin: ctx.node(),
                    kind: RequestKind::Fetch,
                },
            );
        }
    }

    /// Serves or forwards an incoming object request.
    #[allow(clippy::too_many_arguments)]
    fn handle_request(
        &mut self,
        ctx: &mut Context<'_, AthenaMsg>,
        from: NodeId,
        name: Name,
        wanted: Vec<Label>,
        qid: QueryId,
        origin: NodeId,
        kind: RequestKind,
    ) {
        let now = ctx.now();
        let me = ctx.node();
        let headroom = self.shared.config.serve_headroom;
        // Cheapest first (§II-C): fresh trusted *labels* in place of the
        // object (§VI-D) — "several orders of magnitude resource savings".
        // Usable labels answer their share of the request immediately; only
        // the remainder (if any) keeps traveling as an object request.
        let mut wanted = wanted;
        if self.shared.config.strategy.label_sharing() && !wanted.is_empty() {
            let usable: Vec<Label> = wanted
                .iter()
                .filter(|l| {
                    self.labels.get(*l).is_some_and(|c| {
                        self.label_usable(c, now) && self.shared.config.trust.accepts(c.annotator)
                    })
                })
                .cloned()
                .collect();
            if !usable.is_empty() {
                self.stats.label_hits += 1;
                if ctx.obs_enabled() {
                    ctx.emit(EventKind::LabelHit {
                        requester: from.index() as u32,
                        labels: usable.len() as u64,
                        query: qid_attr(qid),
                    });
                }
                for l in &usable {
                    let c = self.labels.get(l).expect("checked above").clone(); // lint: allow(panic) — presence and usability checked just above
                    ctx.send(
                        from,
                        AthenaMsg::LabelShare {
                            label: l.clone(),
                            value: c.value,
                            sampled_at: c.sampled_at,
                            validity: c.validity,
                            annotator: c.annotator,
                            based_on: c.based_on,
                            for_query: qid_tag(qid),
                        },
                    );
                }
                wanted.retain(|l| !usable.contains(l));
                if wanted.is_empty() {
                    return;
                }
            }
        }
        // Fresh cached object with enough remaining validity to survive the
        // trip and the requester's decision?
        if let Some(stored) = self.content.get_fresh(&name, now) {
            if stored.expires_at() >= now + headroom {
                let object = stored.value.clone();
                self.stats.cache_hits += 1;
                if ctx.obs_enabled() {
                    ctx.emit(EventKind::CacheHit {
                        name: name.to_string(),
                        requester: from.index() as u32,
                        query: qid_attr(qid),
                    });
                }
                ctx.send(
                    from,
                    AthenaMsg::Data {
                        object,
                        push_to: None,
                        for_query: qid_tag(qid),
                    },
                );
                return;
            }
        }
        // Approximate substitution (§V-A): a fresh cached object whose name
        // shares a long-enough prefix — e.g. another camera over the same
        // road segment — unless the name space region is critical (§V-C).
        if let Some(min_shared) = self.shared.config.approx_min_shared {
            if self.shared.config.criticality.classify(&name) != Criticality::Critical {
                if let Some((_, stored)) =
                    self.content
                        .closest_fresh(&name, now + headroom, min_shared)
                {
                    // The name-similarity proxy is checked against ground
                    // truth coverage so a bad namespace design cannot send
                    // useless evidence on a long trip.
                    if wanted.iter().all(|l| stored.value.covers_label(l)) {
                        let object = stored.value.clone();
                        self.stats.approx_hits += 1;
                        if ctx.obs_enabled() {
                            ctx.emit(EventKind::ApproxHit {
                                name: name.to_string(),
                                substitute: object.name.to_string(),
                                query: qid_attr(qid),
                            });
                        }
                        ctx.send(
                            from,
                            AthenaMsg::Data {
                                object,
                                push_to: None,
                                for_query: qid_tag(qid),
                            },
                        );
                        return;
                    }
                }
            }
        }
        let Some(spec) = self.catalog().by_name(&name) else {
            return; // unknown object: drop
        };
        let source = spec.source;
        let first_cover = spec.covers[0].clone();
        // We are the source: sample fresh and reply.
        if source == me {
            let idx = self
                .catalog()
                .providers_of(&first_cover)
                .iter()
                .copied()
                .find(|&i| self.catalog().get(i).name == name)
                .expect("own object is indexed"); // lint: allow(panic) — the catalog indexes every object it assigned to this node
            let object = self.sample_object(idx, now);
            self.content.insert(
                &object.name.clone(),
                object.clone(),
                object.size,
                object.sampled_at,
                object.validity,
            );
            if ctx.obs_enabled() {
                ctx.emit(EventKind::CacheStore {
                    name: object.name.to_string(),
                    bytes: object.size,
                    validity_us: object.validity.as_micros(),
                    query: qid_attr(qid),
                });
            }
            ctx.send(
                from,
                AthenaMsg::Data {
                    object,
                    push_to: None,
                    for_query: qid_tag(qid),
                },
            );
            return;
        }
        // Prefetch requests are not forwarded (§VI-B).
        if kind == RequestKind::Prefetch {
            return;
        }
        if ctx.obs_enabled() {
            let forwarded_to = ctx
                .next_hop_toward(source)
                .filter(|h| *h != from)
                .map(|h| h.index() as u32);
            ctx.emit(EventKind::CacheMiss {
                name: name.to_string(),
                forwarded_to,
                query: qid_attr(qid),
            });
        }
        // Register the interest; forward only the first.
        let first = self.pit.register(
            &name,
            Requester::Neighbor(from),
            (qid, wanted.clone()),
            now + self.shared.config.interest_lifetime,
        );
        if first {
            if let Some(hop) = ctx.next_hop_toward(source) {
                if hop != from {
                    self.stats.requests_forwarded += 1;
                    ctx.send(
                        hop,
                        AthenaMsg::Request {
                            name,
                            wanted,
                            qid,
                            origin,
                            kind,
                        },
                    );
                }
            }
        }
    }

    /// Handles arriving data: cache, serve interests, annotate, continue a
    /// prefetch push. `for_query` is the sender's attribution tag — the
    /// decision the object is traveling for, when the sender knew it.
    fn handle_data(
        &mut self,
        ctx: &mut Context<'_, AthenaMsg>,
        object: EvidenceObject,
        push_to: Option<NodeId>,
        for_query: Option<QueryId>,
    ) {
        let me = ctx.node();
        self.content.insert(
            &object.name.clone(),
            object.clone(),
            object.size,
            object.sampled_at,
            object.validity,
        );

        // Collect distinct neighbor requesters from the PIT, remembering
        // which decision each neighbor's interest serves (for attribution
        // of the forwarded copies).
        let interests = self.pit.take(&object.name);
        let mut neighbor_targets: BTreeSet<NodeId> = BTreeSet::new();
        let mut nb_query: BTreeMap<NodeId, QueryId> = BTreeMap::new();
        let mut interest_query: Option<QueryId> = None;
        let mut local_interested = false;
        for i in &interests {
            let (qid_i, _) = &i.query;
            if interest_query.is_none() {
                interest_query = qid_tag(*qid_i);
            }
            match i.requester {
                Requester::Local => local_interested = true,
                Requester::Neighbor(nb) => {
                    neighbor_targets.insert(nb);
                    if let Some(tag) = qid_tag(*qid_i) {
                        nb_query.entry(nb).or_insert(tag);
                    }
                }
            }
        }
        if ctx.obs_enabled() {
            ctx.emit(EventKind::CacheStore {
                name: object.name.to_string(),
                bytes: object.size,
                validity_us: object.validity.as_micros(),
                query: for_query.or(interest_query).map(|q| q.0),
            });
        }
        // Continue a prefetch push toward its destination.
        let mut push_hop: Option<(NodeId, NodeId)> = None; // (next hop, final dst)
        if let Some(dst) = push_to {
            if dst != me {
                if let Some(hop) = ctx.next_hop_toward(dst) {
                    push_hop = Some((hop, dst));
                }
            }
        }
        for nb in &neighbor_targets {
            let continues_push = push_hop.map(|(hop, _)| hop == *nb).unwrap_or(false);
            self.stats.data_forwarded += 1;
            ctx.send(
                *nb,
                AthenaMsg::Data {
                    object: object.clone(),
                    push_to: if continues_push { push_to } else { None },
                    for_query: nb_query.get(nb).copied().or(for_query),
                },
            );
            if continues_push {
                push_hop = None; // the forwarded copy carries the push onward
            }
        }
        if let Some((hop, dst)) = push_hop {
            let now = ctx.now();
            if !self.triage_redundant(ctx, hop, &object.name, now) {
                ctx.send(
                    hop,
                    AthenaMsg::Data {
                        object: object.clone(),
                        push_to: Some(dst),
                        for_query,
                    },
                );
            }
        }
        // Adaptive load signal: evidence bytes arriving for local queries
        // accumulate per query and are folded into the load estimator when
        // the decision completes — the same Deliver-with-attribution the
        // cost ledger charges. Local delivery itself happens via the
        // annotation below.
        if self.adaptive.is_some() && local_interested {
            let mut local_qids: BTreeSet<QueryId> = BTreeSet::new();
            for i in &interests {
                if i.requester == Requester::Local {
                    let (qid_i, _) = &i.query;
                    if qid_i.0 != u64::MAX {
                        local_qids.insert(*qid_i);
                    }
                }
            }
            for q in local_qids {
                *self.ingress_bytes.entry(q).or_insert(0) += object.size;
            }
        }

        // The object may also satisfy interests registered under *other*
        // names — a panorama or an approximate substitute covers the same
        // label as the exact object someone asked for.
        let mut served_label_targets: BTreeSet<NodeId> = neighbor_targets.clone();
        for label in &object.covers {
            let provider_names: Vec<Name> = self
                .catalog()
                .providers_of(label)
                .iter()
                .map(|&i| self.catalog().get(i).name.clone())
                .filter(|n| *n != object.name)
                .collect();
            for name in provider_names {
                if !self.pit.has_pending(&name) {
                    continue;
                }
                let interests = self.pit.take(&name);
                let mut kept: Vec<Label> = Vec::new();
                let mut any_emptied = false;
                for i in interests {
                    let (qid_i, mut wanted_i) = i.query;
                    // The object resolves whatever subset of the interest's
                    // labels it covers; forward it and whittle.
                    if wanted_i.iter().any(|l| object.covers_label(l)) {
                        if let Requester::Neighbor(nb) = i.requester {
                            if served_label_targets.insert(nb) {
                                self.stats.data_forwarded += 1;
                                ctx.send(
                                    nb,
                                    AthenaMsg::Data {
                                        object: object.clone(),
                                        push_to: None,
                                        for_query: qid_tag(qid_i),
                                    },
                                );
                            }
                        }
                        wanted_i.retain(|l| !object.covers_label(l));
                    }
                    if wanted_i.is_empty() {
                        any_emptied = true;
                    } else {
                        for l in &wanted_i {
                            if !kept.contains(l) {
                                kept.push(l.clone());
                            }
                        }
                        self.pit
                            .register(&name, i.requester, (qid_i, wanted_i), i.expires_at);
                    }
                }
                if any_emptied && !kept.is_empty() {
                    self.reforward_request(ctx, &name, kept);
                }
            }
        }
        // Annotate for any local query that cares (origin-side evaluation).
        self.annotate_object(ctx, &object);
        self.advance_queries(ctx);
    }

    /// Handles a shared label: cache, apply, serve matching interests,
    /// forward toward the data source.
    #[allow(clippy::too_many_arguments)]
    fn handle_label_share(
        &mut self,
        ctx: &mut Context<'_, AthenaMsg>,
        from: NodeId,
        label: Label,
        value: bool,
        sampled_at: SimTime,
        validity: SimDuration,
        annotator: NodeId,
        based_on: Name,
        for_query: Option<QueryId>,
    ) {
        let now = ctx.now();
        let me = ctx.node();
        self.apply_shared_label(
            &label, value, sampled_at, validity, annotator, &based_on, now,
        );

        // Serve pending interests that wanted an object *for this label*.
        if self.shared.config.trust.accepts(annotator) {
            let provider_names: Vec<Name> = self
                .catalog()
                .providers_of(&label)
                .iter()
                .map(|&i| self.catalog().get(i).name.clone())
                .collect();
            for name in provider_names {
                if !self.pit.has_pending(&name) {
                    continue;
                }
                let interests = self.pit.take(&name);
                let mut targets: BTreeMap<NodeId, Option<QueryId>> = BTreeMap::new();
                let mut any_emptied = false;
                let mut kept: Vec<Label> = Vec::new();
                for i in interests {
                    let (qid_i, mut wanted_i) = i.query;
                    if wanted_i.contains(&label) {
                        // Forward the share to the requester and whittle the
                        // interest; it stays pending for its other labels.
                        if let Requester::Neighbor(nb) = i.requester {
                            targets.entry(nb).or_insert(qid_tag(qid_i));
                        }
                        // Local interests are satisfied via apply_shared_label.
                        wanted_i.retain(|l| l != &label);
                    }
                    if wanted_i.is_empty() {
                        any_emptied = true;
                    } else {
                        for l in &wanted_i {
                            if !kept.contains(l) {
                                kept.push(l.clone());
                            }
                        }
                        self.pit
                            .register(&name, i.requester, (qid_i, wanted_i), i.expires_at);
                    }
                }
                // An emptied interest may have been the one whose request
                // was in flight (answered upstream without forwarding);
                // re-request the survivors' labels so they are not starved.
                if any_emptied && !kept.is_empty() {
                    self.reforward_request(ctx, &name, kept);
                }
                for (nb, nb_query) in targets {
                    self.stats.labels_forwarded += 1;
                    ctx.send(
                        nb,
                        AthenaMsg::LabelShare {
                            label: label.clone(),
                            value,
                            sampled_at,
                            validity,
                            annotator,
                            based_on: based_on.clone(),
                            for_query: nb_query.or(for_query),
                        },
                    );
                }
            }
        }

        // Propagate toward the data source so future requests en route can
        // be served (§VI-D).
        if let Some(spec) = self.catalog().by_name(&based_on) {
            if spec.source != me {
                if let Some(hop) = ctx.next_hop_toward(spec.source) {
                    if hop != from {
                        ctx.send(
                            hop,
                            AthenaMsg::LabelShare {
                                label,
                                value,
                                sampled_at,
                                validity,
                                annotator,
                                based_on,
                                for_query,
                            },
                        );
                    }
                }
            }
        }
        self.advance_queries(ctx);
    }

    /// Processes the background prefetch queue: one source-side push per
    /// tick, and only when no local foreground fetch is outstanding
    /// ("the prefetch queue is only processed in the background", §VI-A).
    fn process_prefetch(&mut self, ctx: &mut Context<'_, AthenaMsg>) {
        let now = ctx.now();
        let me = ctx.node();
        let foreground_busy = self
            .queries
            .values()
            .any(|q| !q.status.is_final() && q.outstanding.is_some());
        if foreground_busy {
            return;
        }
        while let Some(task) = self.prefetch_queue.pop_front() {
            if task.deadline_at <= now {
                continue; // stale task
            }
            let (spec_name, spec_validity, spec_source) = {
                let spec = self.catalog().get(task.object_idx);
                (spec.name.clone(), spec.validity, spec.source)
            };
            debug_assert_eq!(spec_source, me);
            if task.origin == me {
                continue; // our own upcoming query; nothing to push to
            }
            let Some(hop) = ctx.next_hop_toward(task.origin) else {
                continue;
            };
            // Dedup: skip if we pushed this object on this link recently
            // (within its validity).
            let key = (spec_name, hop);
            if let Some(&last) = self.recent_pushes.get(&key) {
                if now.saturating_since(last) < spec_validity {
                    continue;
                }
            }
            let name = key.0.clone();
            if self.triage_redundant(ctx, hop, &name, now) {
                continue; // a very similar view was just pushed this way
            }
            let object = self.sample_object(task.object_idx, now);
            self.content.insert(
                &object.name.clone(),
                object.clone(),
                object.size,
                object.sampled_at,
                object.validity,
            );
            self.recent_pushes.insert(key, now);
            self.stats.prefetch_pushes += 1;
            if ctx.obs_enabled() {
                ctx.emit(EventKind::CacheStore {
                    name: object.name.to_string(),
                    bytes: object.size,
                    validity_us: object.validity.as_micros(),
                    query: Some(task.qid.0),
                });
                ctx.emit(EventKind::PrefetchPush {
                    name: object.name.to_string(),
                    toward: hop.index() as u32,
                    query: Some(task.qid.0),
                });
            }
            ctx.send(
                hop,
                AthenaMsg::Data {
                    object,
                    push_to: Some(task.origin),
                    for_query: Some(task.qid),
                },
            );
            break; // one push per tick keeps prefetch in the background
        }
    }
}

impl AthenaNode {
    /// Floods the decision structure of a query that has not been issued
    /// yet, giving sources a prefetching head start (§VIII).
    fn announce_only(&mut self, ctx: &mut Context<'_, AthenaMsg>, inst: QueryInstance) {
        let me = ctx.node();
        let qid = QueryId(inst.id);
        if !self.seen_announces.insert(qid) {
            return;
        }
        let deadline_at = inst.issue_at + inst.deadline;
        let neighbors: Vec<NodeId> = ctx.topology().neighbors(me).collect();
        for nb in neighbors {
            ctx.send(
                nb,
                AthenaMsg::QueryAnnounce {
                    qid,
                    origin: me,
                    expr: inst.expr.clone(),
                    deadline_at,
                },
            );
        }
    }
}

impl Protocol for AthenaNode {
    type Msg = AthenaMsg;
    type Ext = AthenaEvent;

    fn on_external(&mut self, ctx: &mut Context<'_, AthenaMsg>, event: AthenaEvent) {
        let inst = match event {
            AthenaEvent::Issue(inst) => inst,
            AthenaEvent::AnnounceOnly(inst) => {
                self.announce_only(ctx, inst);
                return;
            }
        };
        let now = ctx.now();
        let me = ctx.node();
        debug_assert_eq!(inst.origin, me, "query delivered to wrong node");
        let qid = QueryId(inst.id);
        let labels = inst.expr.labels();
        let candidates =
            self.shared
                .config
                .strategy
                .candidates(&labels, self.catalog(), me, ctx.topology());
        let state = QueryState::new(qid, inst.expr.clone(), now, inst.deadline);
        let deadline_at = state.deadline_at;
        // Admission gate (adaptive mode): predict the plan's cost and ask
        // the policy before any announce or fetch leaves this node. Gated
        // queries still get their state and deadline timer, so reporting
        // counts them against resolution like any other miss.
        let mut gate: Option<(u64, AdmissionVerdict, AdmissionPolicy)> = None;
        if let Some(st) = self.adaptive.as_ref() {
            if let Some(policy) = st.config.admission {
                let predicted = self.predicted_plan_bytes(&inst.expr, me, ctx.topology());
                let active = self.active_admitted();
                let verdict = policy.verdict(predicted, active, &st.load, inst.deadline, 0);
                gate = Some((predicted, verdict, policy));
            }
        }
        let admitted = gate.is_none_or(|(_, v, _)| v == AdmissionVerdict::Admit);
        if ctx.obs_enabled() {
            ctx.emit(EventKind::QueryInit {
                query: qid.0,
                origin: me.index() as u32,
            });
            if let Some((predicted, verdict, _)) = gate {
                ctx.emit(EventKind::Admission {
                    query: qid.0,
                    verdict: verdict.name(),
                    predicted_bytes: predicted,
                });
            }
            if admitted {
                let (rationale, expected_bytes) = self.plan_rationale(&inst.expr, ctx);
                ctx.emit(EventKind::Plan {
                    query: qid.0,
                    strategy: self.shared.config.strategy.code(),
                    candidates: candidates.len() as u64,
                    expected_bytes,
                    rationale,
                });
            }
        }
        self.queries.insert(qid, state);
        self.plans.insert(qid, (candidates, labels));
        self.seen_announces.insert(qid);
        match gate {
            Some((predicted, AdmissionVerdict::Shed, _)) => {
                self.stats.admission_shed += 1;
                self.admission.insert(
                    qid,
                    AdmissionRecord {
                        predicted,
                        state: AdmissionState::Shed,
                    },
                );
            }
            Some((predicted, AdmissionVerdict::Defer, policy)) => {
                self.stats.admission_deferred += 1;
                self.admission.insert(
                    qid,
                    AdmissionRecord {
                        predicted,
                        state: AdmissionState::Deferred {
                            until: now + policy.defer_for,
                            tries: 1,
                        },
                    },
                );
            }
            _ => {
                // Flood the decision structure so the network can prefetch.
                let neighbors: Vec<NodeId> = ctx.topology().neighbors(me).collect();
                for nb in neighbors {
                    ctx.send(
                        nb,
                        AthenaMsg::QueryAnnounce {
                            qid,
                            origin: me,
                            expr: inst.expr.clone(),
                            deadline_at,
                        },
                    );
                }
            }
        }
        // Deadline timer: tag = qid + 1 (0 is the tick).
        ctx.set_timer_at(deadline_at, qid.0 + 1);
        self.advance_queries(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, AthenaMsg>, from: NodeId, msg: AthenaMsg) {
        match msg {
            AthenaMsg::QueryAnnounce {
                qid,
                origin,
                expr,
                deadline_at,
            } => {
                if !self.seen_announces.insert(qid) {
                    return;
                }
                self.stats.announces_relayed += 1;
                let me = ctx.node();
                let neighbors: Vec<NodeId> = ctx
                    .topology()
                    .neighbors(me)
                    .filter(|n| *n != from)
                    .collect();
                for nb in neighbors {
                    ctx.send(
                        nb,
                        AthenaMsg::QueryAnnounce {
                            qid,
                            origin,
                            expr: expr.clone(),
                            deadline_at,
                        },
                    );
                }
                if self.shared.config.prefetch_enabled() && ctx.now() < deadline_at {
                    let labels = expr.labels();
                    let candidates = self.shared.config.strategy.candidates(
                        &labels,
                        self.catalog(),
                        origin,
                        ctx.topology(),
                    );
                    for idx in candidates {
                        if self.catalog().get(idx).source == me {
                            self.prefetch_queue.push_back(PushTask {
                                object_idx: idx,
                                origin,
                                qid,
                                deadline_at,
                            });
                        }
                    }
                    if !self.prefetch_queue.is_empty() {
                        self.arm_tick(ctx);
                    }
                }
            }
            AthenaMsg::Request {
                name,
                wanted,
                qid,
                origin,
                kind,
            } => {
                self.handle_request(ctx, from, name, wanted, qid, origin, kind);
            }
            AthenaMsg::Data {
                object,
                push_to,
                for_query,
            } => {
                self.handle_data(ctx, object, push_to, for_query);
            }
            AthenaMsg::LabelShare {
                label,
                value,
                sampled_at,
                validity,
                annotator,
                based_on,
                for_query,
            } => {
                self.handle_label_share(
                    ctx, from, label, value, sampled_at, validity, annotator, based_on, for_query,
                );
            }
        }
    }

    /// Crash recovery (fault injection): volatile forwarding state is gone;
    /// caches survive or not per [`NodeConfig::crash_wipes_cache`]. Open
    /// queries restart their retrieval loop — the in-flight fetch is
    /// forgotten (its reply, if any, was dropped while we were down),
    /// deadline timers are re-armed (timers that fired during the outage
    /// were swallowed), and the decision structure is re-announced so
    /// sources can resume prefetching.
    fn on_recover(&mut self, ctx: &mut Context<'_, AthenaMsg>) {
        let now = ctx.now();
        let me = ctx.node();
        self.pit = Pit::new();
        self.prefetch_queue.clear();
        self.recent_pushes.clear();
        self.recent_bg.clear();
        self.votes.clear();
        self.tick_armed = false;
        if self.shared.config.crash_wipes_cache {
            self.content = ContentStore::new(self.shared.config.cache_capacity);
            self.labels.clear();
        }
        let mut reopen: Vec<(QueryId, dde_logic::dnf::Dnf, SimTime)> = Vec::new();
        for (qid, q) in self.queries.iter_mut() {
            if q.check(now).is_final() {
                continue;
            }
            q.outstanding = None;
            // Queries the admission gate is holding back were never
            // announced; they re-face the gate in the retrieval loop
            // instead of being re-announced here.
            if self
                .admission
                .get(qid)
                .is_some_and(|r| !matches!(r.state, AdmissionState::Admitted))
            {
                continue;
            }
            reopen.push((*qid, q.expr.clone(), q.deadline_at));
        }
        let neighbors: Vec<NodeId> = ctx.topology().neighbors(me).collect();
        for (qid, expr, deadline_at) in reopen {
            for nb in &neighbors {
                ctx.send(
                    *nb,
                    AthenaMsg::QueryAnnounce {
                        qid,
                        origin: me,
                        expr: expr.clone(),
                        deadline_at,
                    },
                );
            }
            ctx.set_timer_at(deadline_at, qid.0 + 1);
        }
        self.advance_queries(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, AthenaMsg>, tag: u64) {
        if tag == TICK_TAG {
            self.tick_armed = false;
            self.pit.expire(ctx.now());
            self.advance_queries(ctx);
            self.process_prefetch(ctx);
            if self.has_pending_work(ctx.now()) {
                self.arm_tick(ctx);
            }
        } else {
            // Deadline for query (tag - 1).
            let qid = QueryId(tag - 1);
            if let Some(q) = self.queries.get_mut(&qid) {
                q.check(ctx.now());
            }
            self.fold_finished_into_load();
            self.emit_query_outcomes(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::GroundTruthAnnotator;
    use dde_logic::dnf::{Dnf, Term};
    use dde_netsim::sim::Simulator;
    use dde_netsim::topology::{LinkSpec, Topology};
    use dde_workload::catalog::ObjectSpec;
    use dde_workload::scenario::QueryInstance;
    use dde_workload::world::DynamicsClass;

    /// A 4-node star — leaf 0, hub 1, leaf 2, source-leaf 3 — with two
    /// labels: `x` covered by a cheap camera and a wide shot (both hosted
    /// at node 3); `y` covered only by the wide shot. Requests from either
    /// leaf transit the hub, which is where caching/label effects show.
    fn harness(config: NodeConfig) -> (Simulator<AthenaNode>, Arc<SharedWorld>) {
        let mut topology = Topology::new(4);
        topology.add_link(NodeId(0), NodeId(1), LinkSpec::mbps1());
        topology.add_link(NodeId(1), NodeId(2), LinkSpec::mbps1());
        topology.add_link(NodeId(1), NodeId(3), LinkSpec::mbps1());
        topology.rebuild_routes();
        let slow = SimDuration::from_secs(600);
        let mut world = WorldModel::new(4);
        world.register(Label::new("x"), DynamicsClass::Slow, slow, 1.0);
        world.register(Label::new("y"), DynamicsClass::Slow, slow, 1.0);
        let mut catalog = Catalog::new();
        catalog.add(ObjectSpec {
            name: "/city/seg/x/cam/a".parse().unwrap(),
            covers: vec![Label::new("x")],
            size: 250_000,
            source: NodeId(3),
            class: DynamicsClass::Slow,
            validity: slow,
        });
        catalog.add(ObjectSpec {
            name: "/city/seg/x/cam/wide".parse().unwrap(),
            covers: vec![Label::new("x"), Label::new("y")],
            size: 450_000,
            source: NodeId(3),
            class: DynamicsClass::Slow,
            validity: slow,
        });
        let shared = Arc::new(SharedWorld {
            catalog,
            world,
            config,
        });
        let nodes: Vec<AthenaNode> = (0..4)
            .map(|_| AthenaNode::new(Arc::clone(&shared), Arc::new(GroundTruthAnnotator)))
            .collect();
        (Simulator::new(topology, nodes, 1), shared)
    }

    fn query(id: u64, origin: usize, labels: &[&str]) -> QueryInstance {
        QueryInstance {
            id,
            origin: NodeId(origin),
            expr: Dnf::from_terms(vec![Term::all_of(labels.iter().copied())]),
            deadline: SimDuration::from_secs(60),
            issue_at: SimTime::ZERO,
        }
    }

    #[test]
    fn local_source_resolves_without_network() {
        let (mut sim, _) = harness(NodeConfig::new(Strategy::Lvf));
        sim.schedule_external(SimTime::ZERO, NodeId(3), query(0, 3, &["x"]).into());
        sim.run();
        let node = sim.node(NodeId(3));
        let q = node.queries().next().unwrap();
        assert!(matches!(
            q.status,
            crate::query::QueryStatus::Decided { .. }
        ));
        assert_eq!(q.counters.requests_sent, 0, "co-located evidence is free");
        assert!(node.stats.local_samples >= 1);
        assert_eq!(sim.metrics().kind("data").count, 0);
    }

    #[test]
    fn remote_fetch_travels_hop_by_hop() {
        let (mut sim, _) = harness(NodeConfig::new(Strategy::Lvf));
        sim.schedule_external(SimTime::ZERO, NodeId(0), query(0, 0, &["x"]).into());
        sim.run();
        let q = sim.node(NodeId(0)).queries().next().unwrap();
        assert!(matches!(
            q.status,
            crate::query::QueryStatus::Decided { .. }
        ));
        // Data crossed both hops: the forwarder relayed it.
        assert!(sim.node(NodeId(1)).stats.requests_forwarded >= 1);
        assert!(sim.node(NodeId(1)).stats.data_forwarded >= 1);
        // ...and cached a copy along the way.
        assert!(sim
            .node(NodeId(1))
            .content_store()
            .peek(&"/city/seg/x/cam/a".parse().unwrap())
            .is_some());
    }

    #[test]
    fn forwarder_cache_serves_second_query() {
        let (mut sim, _) = harness(NodeConfig::new(Strategy::Lvf));
        sim.schedule_external(SimTime::ZERO, NodeId(0), query(0, 0, &["x"]).into());
        // Leaf 2 asks later for the same label; the hub cached the transit
        // copy of the first fetch and answers directly.
        sim.schedule_external(
            SimTime::from_secs(20),
            NodeId(2),
            query(1, 2, &["x"]).into(),
        );
        sim.run();
        let q1 = sim.node(NodeId(2)).queries().next().unwrap();
        assert!(matches!(
            q1.status,
            crate::query::QueryStatus::Decided { .. }
        ));
        assert!(sim.node(NodeId(1)).stats.cache_hits >= 1);
        // First fetch: 3→1, 1→0. Second: 1→2 from cache. Three data sends.
        assert_eq!(sim.metrics().kind("data").count, 3);
    }

    #[test]
    fn pit_aggregates_concurrent_fetches() {
        let (mut sim, _) = harness(NodeConfig::new(Strategy::Lvf));
        // Both leaves want the same object at the same time; their requests
        // meet at the hub, whose PIT forwards only one upstream.
        sim.schedule_external(SimTime::ZERO, NodeId(0), query(0, 0, &["x"]).into());
        sim.schedule_external(SimTime::ZERO, NodeId(2), query(1, 2, &["x"]).into());
        sim.run();
        for n in [0usize, 2] {
            let q = sim.node(NodeId(n)).queries().next().unwrap();
            assert!(matches!(
                q.status,
                crate::query::QueryStatus::Decided { .. }
            ));
        }
        // The source transmitted once (3→1); the hub fanned out to both
        // leaves: 3 data transmissions total, not 4.
        assert_eq!(sim.metrics().kind("data").count, 3);
    }

    #[test]
    fn label_sharing_serves_request_with_label() {
        let (mut sim, _) = harness(NodeConfig::new(Strategy::LvfLabelShare));
        // Leaf 2 resolves x first and (lvfl) shares the label toward the
        // source; the hub caches it in transit.
        sim.schedule_external(SimTime::ZERO, NodeId(2), query(0, 2, &["x"]).into());
        // Leaf 0 asks later; its request stops at the hub's cached label.
        sim.schedule_external(
            SimTime::from_secs(30),
            NodeId(0),
            query(1, 0, &["x"]).into(),
        );
        sim.run();
        let q1 = sim.node(NodeId(0)).queries().next().unwrap();
        assert!(matches!(
            q1.status,
            crate::query::QueryStatus::Decided { .. }
        ));
        assert!(
            sim.node(NodeId(1)).stats.label_hits >= 1,
            "the hub should answer with its cached label"
        );
        assert_eq!(
            q1.counters.labels_from_shares, 1,
            "leaf 0 learned x from a shared label"
        );
        // Only the first query moved object bytes (3→1, 1→2).
        assert_eq!(sim.metrics().kind("data").count, 2);
        assert!(sim.metrics().kind("label").count >= 1);
    }

    #[test]
    fn headroom_refuses_nearly_expired_cache() {
        // With an absurd headroom the hub's cache never serves: the second
        // leaf's request goes all the way to the source (4 data sends,
        // versus 3 with the default headroom — see
        // forwarder_cache_serves_second_query).
        let mut config = NodeConfig::new(Strategy::Lvf);
        config.serve_headroom = SimDuration::from_secs(1_000_000); // absurd
        let (mut sim, _) = harness(config);
        sim.schedule_external(SimTime::ZERO, NodeId(0), query(0, 0, &["x"]).into());
        sim.schedule_external(
            SimTime::from_secs(20),
            NodeId(2),
            query(1, 2, &["x"]).into(),
        );
        sim.run();
        assert_eq!(sim.metrics().kind("data").count, 4);
        assert_eq!(sim.node(NodeId(1)).stats.cache_hits, 0);
    }

    #[test]
    fn wanted_labels_from_panorama_resolve_together() {
        let (mut sim, _) = harness(NodeConfig::new(Strategy::Lvf));
        // One query needing both labels: the cover picks the wide camera
        // (600 KB for two labels beats 250 + 600).
        sim.schedule_external(SimTime::ZERO, NodeId(0), query(0, 0, &["x", "y"]).into());
        sim.run();
        let q = sim.node(NodeId(0)).queries().next().unwrap();
        assert!(matches!(
            q.status,
            crate::query::QueryStatus::Decided { .. }
        ));
        assert_eq!(
            q.counters.requests_sent, 1,
            "one wide fetch should resolve both labels"
        );
    }

    #[test]
    fn deadline_timer_finalizes_unresolvable_query() {
        let (mut sim, _) = harness(NodeConfig::new(Strategy::Lvf));
        // A label nobody provides: the query can never resolve.
        sim.schedule_external(SimTime::ZERO, NodeId(0), query(0, 0, &["ghost"]).into());
        sim.run();
        let q = sim.node(NodeId(0)).queries().next().unwrap();
        assert_eq!(q.status, crate::query::QueryStatus::Missed);
        assert_eq!(sim.metrics().kind("data").count, 0);
    }

    #[test]
    fn prefetch_config_default_off() {
        let config = NodeConfig::new(Strategy::Lvf);
        assert!(!config.prefetch_enabled());
        let mut on = NodeConfig::new(Strategy::Comprehensive);
        on.prefetch = Some(true);
        assert!(on.prefetch_enabled());
    }

    #[test]
    fn cached_label_freshness() {
        let c = CachedLabel {
            value: true,
            sampled_at: SimTime::from_secs(10),
            validity: SimDuration::from_secs(5),
            annotator: NodeId(0),
            based_on: "/x".parse().unwrap(),
        };
        assert!(c.is_fresh_at(SimTime::from_secs(15)));
        assert!(!c.is_fresh_at(SimTime::from_secs(16)));
    }

    #[test]
    fn reliability_score_defaults_to_optimistic() {
        let (sim, _) = harness(NodeConfig::new(Strategy::Lvf));
        let node = sim.node(NodeId(0));
        assert_eq!(node.reliability_of(NodeId(3)), (0, 0));
        assert_eq!(node.reliability_score(NodeId(3)), 1.0);
    }
}

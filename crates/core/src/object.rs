//! Evidence objects in flight (§II-B).
//!
//! An [`EvidenceObject`] is one sampled instance of a catalog object: the
//! source sensor was activated at `sampled_at` and the measurement stays
//! valid for `validity`. The (synthetic) payload is represented by its size
//! only — the protocols depend on transfer cost and on the ground-truth
//! value at sampling time, not on pixel data.

use dde_logic::label::Label;
use dde_logic::time::{SimDuration, SimTime};
use dde_naming::name::Name;
use dde_netsim::topology::NodeId;
use dde_workload::catalog::ObjectSpec;

/// A sampled evidence object traveling through the network.
#[derive(Debug, Clone, PartialEq)]
pub struct EvidenceObject {
    /// Content name.
    pub name: Name,
    /// Labels this object's evidence can resolve.
    pub covers: Vec<Label>,
    /// Payload size in bytes.
    pub size: u64,
    /// The node whose sensor produced the sample.
    pub source: NodeId,
    /// When the sensor was activated / the measurement taken.
    pub sampled_at: SimTime,
    /// How long the measurement stays fresh.
    pub validity: SimDuration,
}

impl EvidenceObject {
    /// Samples a fresh instance of `spec` at `now`.
    pub fn sample(spec: &ObjectSpec, now: SimTime) -> EvidenceObject {
        EvidenceObject {
            name: spec.name.clone(),
            covers: spec.covers.clone(),
            size: spec.size,
            source: spec.source,
            sampled_at: now,
            validity: spec.validity,
        }
    }

    /// The instant this sample stops being fresh.
    pub fn expires_at(&self) -> SimTime {
        self.sampled_at.saturating_add(self.validity)
    }

    /// Whether the sample is fresh at `now`.
    pub fn is_fresh_at(&self, now: SimTime) -> bool {
        now <= self.expires_at()
    }

    /// Whether this object's evidence can resolve `label`.
    pub fn covers_label(&self, label: &Label) -> bool {
        self.covers.iter().any(|l| l == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dde_workload::world::DynamicsClass;

    fn spec() -> ObjectSpec {
        ObjectSpec {
            name: "/city/cam/n1/seg".parse().unwrap(),
            covers: vec![Label::new("viable/a"), Label::new("viable/b")],
            size: 300_000,
            source: NodeId(1),
            class: DynamicsClass::Fast,
            validity: SimDuration::from_secs(30),
        }
    }

    #[test]
    fn sample_copies_spec_and_stamps_time() {
        let o = EvidenceObject::sample(&spec(), SimTime::from_secs(5));
        assert_eq!(o.size, 300_000);
        assert_eq!(o.sampled_at, SimTime::from_secs(5));
        assert_eq!(o.expires_at(), SimTime::from_secs(35));
        assert!(o.is_fresh_at(SimTime::from_secs(35)));
        assert!(!o.is_fresh_at(SimTime::from_secs(36)));
    }

    #[test]
    fn covers_label_checks_list() {
        let o = EvidenceObject::sample(&spec(), SimTime::ZERO);
        assert!(o.covers_label(&Label::new("viable/a")));
        assert!(!o.covers_label(&Label::new("viable/zzz")));
    }
}

//! Failure injection: lossy links, dead nodes, lying annotators, stale
//! caches. The system should degrade, not wedge, and report honestly.

use dde_core::annotate::{LyingAnnotator, NoisyAnnotator};
use dde_core::prelude::*;
use dde_logic::time::SimTime;
use dde_netsim::fault::FaultSchedule;
use dde_netsim::topology::{LinkSpec, NodeId, Topology};
use dde_workload::prelude::*;
use std::sync::Arc;

fn scenario(seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig::small().with_seed(seed).with_fast_ratio(0.4))
}

/// Rebuilds the scenario's topology with the given loss on every link.
fn with_loss(mut s: Scenario, loss: f64) -> Scenario {
    let old = s.topology.clone();
    let mut lossy = Topology::new(old.len());
    for a in old.nodes() {
        for b in old.nodes() {
            if a < b && old.has_link(a, b) {
                let spec = old.link(a, b).expect("adjacent");
                lossy.add_link(a, b, LinkSpec { loss, ..spec });
            }
        }
    }
    lossy.rebuild_routes();
    s.topology = lossy;
    s
}

#[test]
fn lossy_links_degrade_but_do_not_wedge() {
    let clean = run_scenario(&scenario(1), RunOptions::new(Strategy::Lvf));
    let lossy = run_scenario(&with_loss(scenario(1), 0.3), RunOptions::new(Strategy::Lvf));
    // Everything still terminates and is accounted for.
    assert_eq!(lossy.resolved + lossy.missed, lossy.total_queries);
    // Loss can only hurt.
    assert!(lossy.resolved <= clean.resolved);
    // Retries keep some queries alive even at 30% loss.
    assert!(
        lossy.resolved > 0,
        "30% loss should not zero out resolution"
    );
}

#[test]
fn total_loss_resolves_only_local_queries() {
    let r = run_scenario(&with_loss(scenario(2), 1.0), RunOptions::new(Strategy::Lvf));
    assert_eq!(r.resolved + r.missed, r.total_queries);
    // Every message on the medium was lost, so no query can have learned a
    // label from the network; remote evidence being unreachable must show
    // up as deadline misses.
    assert!(r.missed > 0, "a fully-lossy network should cause misses");
}

#[test]
fn dead_source_node_causes_misses_not_hangs() {
    let s = scenario(3);
    let mut config = RunOptions::new(Strategy::Lvf);
    config.seed = 3;
    // Kill the node hosting the most objects.
    let mut counts = vec![0usize; s.topology.len()];
    for o in s.catalog.objects() {
        counts[o.source.index()] += 1;
    }
    let victim = NodeId(
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .expect("nodes exist"),
    );

    // Run with the node down from the start via a custom engine invocation:
    // reuse run_scenario but mark the node down through the simulator is not
    // exposed, so emulate by removing its links from the topology instead.
    let old = s.topology.clone();
    let mut cut = Topology::new(old.len());
    for a in old.nodes() {
        for b in old.nodes() {
            if a < b && old.has_link(a, b) && a != victim && b != victim {
                cut.add_link(a, b, old.link(a, b).expect("adjacent"));
            }
        }
    }
    cut.rebuild_routes();
    let mut s2 = s;
    s2.topology = cut;
    let r = run_scenario(&s2, config);
    assert_eq!(r.resolved + r.missed, r.total_queries);
}

#[test]
fn lying_annotator_destroys_accuracy_but_not_liveness() {
    let s = scenario(4);
    let r =
        run_scenario_with_annotator(&s, RunOptions::new(Strategy::Lvf), Arc::new(LyingAnnotator));
    assert_eq!(r.resolved + r.missed, r.total_queries);
    assert!(r.resolved > 0);
    // With inverted labels, decisions are mostly wrong.
    assert!(
        r.accuracy() < 0.5,
        "lying annotator produced accuracy {:.2}",
        r.accuracy()
    );
}

#[test]
fn noisy_annotator_degrades_accuracy_smoothly() {
    let s = scenario(5);
    let clean = run_scenario(&s, RunOptions::new(Strategy::Lvf));
    let noisy = run_scenario_with_annotator(
        &s,
        RunOptions::new(Strategy::Lvf),
        Arc::new(NoisyAnnotator::new(1, 0.2)),
    );
    assert_eq!(clean.accuracy(), 1.0);
    assert!(noisy.accuracy() < 1.0, "20% flips should cause some errors");
    assert!(
        noisy.accuracy() > 0.3,
        "20% flips should not destroy everything: {:.2}",
        noisy.accuracy()
    );
}

/// Node hosting the most catalog objects — the highest-impact crash victim.
fn busiest_source(s: &Scenario) -> NodeId {
    let mut counts = vec![0usize; s.topology.len()];
    for o in s.catalog.objects() {
        counts[o.source.index()] += 1;
    }
    NodeId(
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .expect("nodes exist"),
    )
}

#[test]
fn crashed_evidence_source_mid_transfer_degrades_not_wedges() {
    let s = scenario(7);
    let victim = busiest_source(&s);
    let mut options = RunOptions::new(Strategy::Lvf);
    // Crash while the first wave of fetches is in flight; recover late
    // enough that stalled queries must ride through the retry path.
    options.faults.crash_at(SimTime::from_secs(2), victim);
    options.faults.recover_at(SimTime::from_secs(70), victim);
    let r = run_scenario(&s, options);
    assert_eq!(
        r.resolved + r.missed,
        r.total_queries,
        "query lost by crash"
    );
    assert_eq!(r.fault_events, 2);
    assert!(
        r.resolved > 0,
        "one crashed source must not zero out resolution"
    );
    // The schedule is part of the options, so the same run replays exactly.
    let mut options2 = RunOptions::new(Strategy::Lvf);
    options2.faults.crash_at(SimTime::from_secs(2), victim);
    options2.faults.recover_at(SimTime::from_secs(70), victim);
    assert_eq!(r, run_scenario(&s, options2));
}

#[test]
fn crashed_query_origin_still_accounts_every_query() {
    let s = scenario(8);
    let origin = s.queries.first().expect("queries exist").origin;
    let mut options = RunOptions::new(Strategy::Lvf);
    // The origin dies shortly into its own query and never comes back:
    // its queries must show up as misses (or earlier decisions), never
    // vanish from the report.
    options.faults.crash_at(SimTime::from_secs(3), origin);
    let r = run_scenario(&s, options);
    assert_eq!(r.resolved + r.missed, r.total_queries);
    assert_eq!(
        r.queries.len(),
        r.total_queries,
        "per-query records must survive an origin crash"
    );
}

#[test]
fn full_partition_healed_before_deadline_degrades_gracefully() {
    let s = scenario(9);
    // Split the network in half at 5 s, heal it at 60 s — well inside the
    // 180 s deadlines, so retries can finish the job after the heal.
    let side: Vec<NodeId> = (0..s.topology.len() / 2).map(NodeId).collect();
    let mut options = RunOptions::new(Strategy::Lvf);
    options
        .faults
        .merge(&FaultSchedule::partition_at(
            &s.topology,
            SimTime::from_secs(5),
            &side,
        ))
        .merge(&FaultSchedule::heal_partition_at(
            &s.topology,
            SimTime::from_secs(60),
            &side,
        ));
    let r = run_scenario(&s, options);
    assert_eq!(r.resolved + r.missed, r.total_queries);
    assert!(
        r.resolved > 0,
        "a healed partition must leave time to resolve queries"
    );
    let clean = run_scenario(&s, RunOptions::new(Strategy::Lvf));
    assert!(
        r.total_bytes > 0 && r.resolved <= clean.resolved,
        "a partition can only hurt resolution ({} vs {})",
        r.resolved,
        clean.resolved
    );
}

#[test]
fn crash_wipes_cache_knob_changes_recovery_but_not_accounting() {
    let s = scenario(10);
    let victim = busiest_source(&s);
    let mut keep = RunOptions::new(Strategy::LvfLabelShare);
    keep.faults.crash_at(SimTime::from_secs(2), victim);
    keep.faults.recover_at(SimTime::from_secs(20), victim);
    let mut wipe = keep.clone();
    wipe.crash_wipes_cache = true;
    let r_keep = run_scenario(&s, keep);
    let r_wipe = run_scenario(&s, wipe);
    assert_eq!(r_keep.resolved + r_keep.missed, r_keep.total_queries);
    assert_eq!(r_wipe.resolved + r_wipe.missed, r_wipe.total_queries);
}

#[test]
fn tiny_caches_still_function() {
    let s = scenario(6);
    let mut small_cache = RunOptions::new(Strategy::LvfLabelShare);
    small_cache.cache_capacity = 1_200_000; // barely above max object size
    let r = run_scenario(&s, small_cache);
    assert_eq!(r.resolved + r.missed, r.total_queries);
    assert!(r.resolved > 0, "tiny caches must not deadlock the system");
    // Tiny caches change which requests hit where — traffic may shift a
    // little in either direction — but must stay within sane bounds of the
    // generously-cached run.
    let generous = run_scenario(&s, RunOptions::new(Strategy::LvfLabelShare));
    assert!(
        r.total_bytes as f64 >= generous.total_bytes as f64 * 0.8,
        "tiny caches should not magically save traffic: {} vs {}",
        r.total_bytes,
        generous.total_bytes
    );
}

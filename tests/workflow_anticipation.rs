//! Integration test for §VIII workflow mining + predictive anticipation:
//! a Markov model mined from doctrine missions predicts next decisions;
//! announcing the predictions ahead of issue time must not hurt resolution
//! and must not slow decisions down.

use dde_core::annotate::GroundTruthAnnotator;
use dde_core::node::{AthenaEvent, AthenaNode, NodeConfig, SharedWorld};
use dde_core::prelude::*;
use dde_core::query::QueryStatus;
use dde_logic::dnf::{Dnf, Term};
use dde_logic::time::{SimDuration, SimTime};
use dde_netsim::sim::Simulator;
use dde_netsim::topology::NodeId;
use dde_workload::prelude::*;
use dde_workload::workflow::{DecisionTemplate, Doctrine};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

fn doctrine(scenario: &Scenario) -> Doctrine {
    let segs: Vec<String> = scenario
        .grid
        .segments()
        .iter()
        .map(|s| s.label().as_str().to_string())
        .collect();
    let q = |a: usize, b: usize| {
        Dnf::from_terms(vec![Term::all_of([segs[a].clone(), segs[b].clone()])])
    };
    let deadline = SimDuration::from_secs(120);
    Doctrine::new(
        vec![
            DecisionTemplate {
                name: "recon".into(),
                expr: q(0, 1),
                deadline,
            },
            DecisionTemplate {
                name: "assess".into(),
                expr: q(2, 3),
                deadline,
            },
            DecisionTemplate {
                name: "act".into(),
                expr: q(4, 5),
                deadline,
            },
        ],
        vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.9],
            vec![0.0, 0.0, 0.0],
        ],
        0,
    )
}

fn replay(
    scenario: &Scenario,
    missions: &[Vec<usize>],
    doctrine: &Doctrine,
    predictor: Option<&WorkflowModel>,
) -> (usize, usize, f64) {
    let spacing = SimDuration::from_secs(60);
    let mut config = NodeConfig::new(Strategy::LvfLabelShare);
    config.prefetch = Some(true);
    config.prob_true_prior = scenario.config.prob_viable;
    let shared = Arc::new(SharedWorld {
        catalog: scenario.catalog.clone(),
        world: scenario.world.clone(),
        config,
    });
    let nodes: Vec<AthenaNode> = (0..scenario.topology.len())
        .map(|_| AthenaNode::new(Arc::clone(&shared), Arc::new(GroundTruthAnnotator)))
        .collect();
    let mut sim = Simulator::new(scenario.topology.clone(), nodes, 5);

    let mut qid = 0u64;
    let mut horizon = SimTime::ZERO;
    for (ni, mission) in missions.iter().enumerate() {
        let origin = NodeId(ni % scenario.topology.len());
        for (step, &tmpl) in mission.iter().enumerate() {
            let issue_at = SimTime::ZERO + spacing * step as u64;
            let t = &doctrine.templates()[tmpl];
            if let Some(model) = predictor {
                if let Some(p) = model.predict_next(tmpl) {
                    let pt = &doctrine.templates()[p];
                    sim.schedule_external(
                        issue_at,
                        origin,
                        AthenaEvent::AnnounceOnly(QueryInstance {
                            id: 1_000_000 + qid,
                            origin,
                            expr: pt.expr.clone(),
                            deadline: pt.deadline,
                            issue_at: issue_at + spacing,
                        }),
                    );
                }
            }
            sim.schedule_external(
                issue_at,
                origin,
                AthenaEvent::Issue(QueryInstance {
                    id: qid,
                    origin,
                    expr: t.expr.clone(),
                    deadline: t.deadline,
                    issue_at,
                }),
            );
            qid += 1;
            horizon = horizon.max(issue_at + t.deadline);
        }
    }
    sim.run_until(horizon + SimDuration::from_secs(5));

    let mut resolved = 0;
    let mut total = 0;
    let mut latency = 0.0;
    for node in sim.nodes() {
        for q in node.queries() {
            total += 1;
            if let QueryStatus::Decided { at, .. } = q.status {
                resolved += 1;
                latency += at.saturating_since(q.issued_at).as_secs_f64();
            }
        }
    }
    (resolved, total, latency / resolved.max(1) as f64)
}

#[test]
fn mined_model_predicts_doctrine() {
    let scenario = Scenario::build(ScenarioConfig::small().with_seed(13));
    let d = doctrine(&scenario);
    let mut rng = SmallRng::seed_from_u64(1);
    let mut model = WorkflowModel::new(3);
    for _ in 0..100 {
        model.observe_sequence(&d.sample(&mut rng, 5));
    }
    assert_eq!(model.predict_next(0), Some(1));
    assert_eq!(model.predict_next(1), Some(2));
    assert_eq!(model.predict_next(2), None);
    let test: Vec<Vec<usize>> = (0..50).map(|_| d.sample(&mut rng, 5)).collect();
    assert!(model.top1_accuracy(&test) > 0.9);
}

#[test]
fn predictive_announcements_do_not_hurt() {
    let scenario = Scenario::build(ScenarioConfig::small().with_seed(13).with_fast_ratio(0.2));
    let d = doctrine(&scenario);
    let mut rng = SmallRng::seed_from_u64(2);
    let mut model = WorkflowModel::new(3);
    for _ in 0..100 {
        model.observe_sequence(&d.sample(&mut rng, 5));
    }
    let missions: Vec<Vec<usize>> = (0..scenario.topology.len())
        .map(|_| d.sample(&mut rng, 4))
        .collect();
    let (r0, t0, lat0) = replay(&scenario, &missions, &d, None);
    let (r1, t1, lat1) = replay(&scenario, &missions, &d, Some(&model));
    assert_eq!(t0, t1);
    assert!(r1 >= r0, "anticipation must not lose queries: {r1} vs {r0}");
    assert!(
        lat1 <= lat0 + 0.5,
        "anticipation must not slow decisions: {lat1:.2} vs {lat0:.2}"
    );
}

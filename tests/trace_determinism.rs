//! Determinism guarantees of the `dde-obs` trace subsystem.
//!
//! The observability layer is keyed entirely to the simulated clock, so it
//! inherits the simulator's replayability: two runs from the same seed must
//! produce **byte-identical** JSONL traces, `dde-obs`'s structural differ
//! must report zero divergence on them, and attaching a sink must not
//! perturb the simulation itself (the null-sink report equals the
//! observed-run report).

use dde_core::prelude::*;
use dde_core::Strategy;
use dde_obs::{diff_jsonl, EventKind, JsonlSink, MemorySink, SharedSink};
use dde_workload::scenario::{Scenario, ScenarioConfig};
use proptest::prelude::*;

fn small_scenario(seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig::small().with_seed(seed).with_fast_ratio(0.4))
}

fn options(seed: u64) -> RunOptions {
    let mut options = RunOptions::new(Strategy::LvfLabelShare);
    options.seed = seed ^ 0x5eed;
    options
}

/// Runs the scenario with a JSONL sink into memory and returns the bytes.
fn jsonl_trace(seed: u64) -> Vec<u8> {
    let scenario = small_scenario(seed);
    let sink = SharedSink::new(JsonlSink::new(Vec::new()));
    let handle = sink.clone();
    let _ = run_scenario_observed(&scenario, options(seed), Box::new(sink));
    handle.with(|j| j.get_ref().clone())
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let a = jsonl_trace(7);
    let b = jsonl_trace(7);
    assert!(!a.is_empty(), "trace should capture events");
    assert_eq!(a, b, "same-seed runs must serialize identical traces");
}

#[test]
fn self_diff_reports_zero_divergence() {
    let a = String::from_utf8(jsonl_trace(11)).expect("trace is UTF-8");
    let b = String::from_utf8(jsonl_trace(11)).expect("trace is UTF-8");
    let diff = diff_jsonl(&a, &b);
    assert!(diff.is_identical(), "diff found: {}", diff.render());
    assert!(diff.divergence.is_none());
}

#[test]
fn different_seeds_diverge() {
    let a = String::from_utf8(jsonl_trace(7)).expect("trace is UTF-8");
    let b = String::from_utf8(jsonl_trace(8)).expect("trace is UTF-8");
    let diff = diff_jsonl(&a, &b);
    assert!(
        !diff.is_identical(),
        "different seeds should produce different traces"
    );
}

#[test]
fn sink_does_not_perturb_the_simulation() {
    let seed = 5;
    let baseline = run_scenario(&small_scenario(seed), options(seed));
    let sink = SharedSink::new(MemorySink::new());
    let mut observed = run_scenario_observed(&small_scenario(seed), options(seed), Box::new(sink));
    // Observed runs additionally carry the cost ledger; everything the
    // simulation itself computed must be identical.
    let ledger = observed
        .ledger
        .take()
        .expect("observed runs carry a ledger");
    assert!(ledger.conserves(), "ledger must conserve byte/msg totals");
    assert_eq!(
        baseline, observed,
        "attaching a sink must not change the RunReport"
    );
}

#[test]
fn trace_covers_the_query_lifecycle() {
    let seed = 5;
    let sink = SharedSink::new(MemorySink::new());
    let handle = sink.clone();
    let report = run_scenario_observed(&small_scenario(seed), options(seed), Box::new(sink));
    let events = handle.with(|m| m.events().to_vec());
    let count = |pred: &dyn Fn(&EventKind) -> bool| events.iter().filter(|r| pred(&r.kind)).count();
    let inits = count(&|k| matches!(k, EventKind::QueryInit { .. }));
    let plans = count(&|k| matches!(k, EventKind::Plan { .. }));
    let finals = count(&|k| {
        matches!(
            k,
            EventKind::QueryResolved { .. } | EventKind::QueryMissed { .. }
        )
    });
    assert_eq!(inits, report.total_queries, "one init per local query");
    assert_eq!(plans, report.total_queries, "one plan per local query");
    assert_eq!(
        finals, report.total_queries,
        "every query emits exactly one terminal event"
    );
    let transmits = count(&|k| matches!(k, EventKind::Transmit { .. }));
    assert!(transmits > 0, "link layer should be instrumented");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Per-node event timestamps never go backwards: the sink records
    /// events in simulator dispatch order, which is time-ordered.
    #[test]
    fn per_node_timestamps_are_monotone(seed in 1u64..500) {
        let scenario = small_scenario(seed);
        let sink = SharedSink::new(MemorySink::new());
        let handle = sink.clone();
        let _ = run_scenario_observed(&scenario, options(seed), Box::new(sink));
        let events = handle.with(|m| m.events().to_vec());
        prop_assert!(!events.is_empty());
        let mut last = std::collections::BTreeMap::new();
        for rec in &events {
            let prev = last.insert(rec.node, rec.at);
            if let Some(prev) = prev {
                prop_assert!(
                    rec.at >= prev,
                    "node {} went backwards: {:?} after {:?}",
                    rec.node, rec.at, prev
                );
            }
        }
    }
}

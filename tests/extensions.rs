//! Integration tests for the paper's extension features:
//! approximate name substitution with criticality exemption (§V-A/V-C),
//! evidence corroboration under noisy sensing, and source-reliability
//! profiles (§IV-B).

use dde_core::annotate::BiasedSourcesAnnotator;
use dde_core::prelude::*;
use dde_logic::dnf::{Dnf, Term};
use dde_logic::label::Label;
use dde_logic::time::{SimDuration, SimTime};
use dde_naming::criticality::{Criticality, CriticalityMap};
use dde_netsim::topology::{LinkSpec, NodeId, Topology};
use dde_workload::catalog::{Catalog, ObjectSpec};
use dde_workload::grid::RoadGrid;
use dde_workload::scenario::{QueryInstance, Scenario, ScenarioConfig};
use dde_workload::world::{DynamicsClass, WorldModel};
use std::sync::Arc;

/// A–B–C line; segment `x` is observed by a cheap single-label camera
/// (source C) and an expensive wide camera covering labels `x` and `y`
/// (also source C). A query at B for `y` stages the wide shot at B; a later
/// query at A for `x` asks for the cheap camera, which B can substitute
/// approximately.
fn approx_scenario() -> Scenario {
    let mut config = ScenarioConfig::small();
    config.deadline = SimDuration::from_secs(60);
    config.prob_viable = 1.0;

    let topology = Topology::line(3, LinkSpec::mbps1());
    let slow = SimDuration::from_secs(600);

    let mut world = WorldModel::new(8);
    world.register(Label::new("x"), DynamicsClass::Slow, slow, 1.0);
    world.register(Label::new("y"), DynamicsClass::Slow, slow, 1.0);

    let mut catalog = Catalog::new();
    catalog.add(ObjectSpec {
        name: "/city/seg/x/cam/a".parse().unwrap(),
        covers: vec![Label::new("x")],
        size: 300_000,
        source: NodeId(2),
        class: DynamicsClass::Slow,
        validity: slow,
    });
    catalog.add(ObjectSpec {
        name: "/city/seg/x/cam/wide".parse().unwrap(),
        covers: vec![Label::new("x"), Label::new("y")],
        size: 800_000,
        source: NodeId(2),
        class: DynamicsClass::Slow,
        validity: slow,
    });

    let queries = vec![
        QueryInstance {
            id: 0,
            origin: NodeId(1), // B fetches the wide camera (only provider of y)
            expr: Dnf::from_terms(vec![Term::all_of(["y"])]),
            deadline: config.deadline,
            issue_at: SimTime::ZERO,
        },
        QueryInstance {
            id: 1,
            origin: NodeId(0), // A asks for the cheap camera for x
            expr: Dnf::from_terms(vec![Term::all_of(["x"])]),
            deadline: config.deadline,
            issue_at: SimTime::from_secs(15),
        },
    ];

    Scenario {
        grid: RoadGrid::new(2, 2),
        node_sites: Vec::new(),
        config,
        topology,
        world,
        catalog,
        queries,
        faults: dde_netsim::fault::FaultSchedule::new(),
    }
}

#[test]
fn approximate_substitution_serves_sibling_view() {
    let s = approx_scenario();
    let mut opts = RunOptions::new(Strategy::Lvf);
    opts.approx_min_shared = Some(3); // must agree on /city/seg/<segment>
    let r = run_scenario(&s, opts);
    assert_eq!(r.resolved, 2);
    assert_eq!(r.accuracy(), 1.0);
    assert!(
        r.approx_hits >= 1,
        "B should substitute the staged wide shot for the cheap camera"
    );
}

#[test]
fn approximate_substitution_off_by_default() {
    let s = approx_scenario();
    let r = run_scenario(&s, RunOptions::new(Strategy::Lvf));
    assert_eq!(r.approx_hits, 0);
    assert_eq!(r.resolved, 2);
}

#[test]
fn high_min_shared_blocks_substitution() {
    let s = approx_scenario();
    let mut opts = RunOptions::new(Strategy::Lvf);
    opts.approx_min_shared = Some(5); // names differ at component 4
    let r = run_scenario(&s, opts);
    assert_eq!(r.approx_hits, 0);
}

#[test]
fn critical_namespace_exempt_from_substitution() {
    let s = approx_scenario();
    let mut opts = RunOptions::new(Strategy::Lvf);
    opts.approx_min_shared = Some(3);
    let mut crit = CriticalityMap::new();
    crit.assign(&"/city/seg/x".parse().unwrap(), Criticality::Critical);
    opts.criticality = crit;
    let r = run_scenario(&s, opts);
    assert_eq!(
        r.approx_hits, 0,
        "critical content must always be served exactly (§V-C)"
    );
    assert_eq!(r.resolved, 2, "the exact fetch still succeeds");
}

/// A generated scenario judged by an annotator that inverts evidence from
/// two compromised source nodes.
fn biased_run(corroboration: usize, seed: u64) -> RunReport {
    let s = Scenario::build(ScenarioConfig::small().with_seed(seed).with_fast_ratio(0.2));
    let mut opts = RunOptions::new(Strategy::Lvf);
    opts.corroboration = corroboration;
    run_scenario_with_annotator(
        &s,
        opts,
        Arc::new(BiasedSourcesAnnotator::new([NodeId(0), NodeId(1)])),
    )
}

#[test]
fn corroboration_recovers_accuracy_under_biased_sources() {
    let mut single = 0.0;
    let mut triple = 0.0;
    let mut n = 0.0;
    // Averaged over enough seeds for the corroboration effect to dominate
    // per-seed noise (a 4-seed window is swung by individual scenarios).
    for seed in 0..16 {
        let r1 = biased_run(1, 100 + seed);
        let r3 = biased_run(3, 100 + seed);
        assert_eq!(r1.resolved + r1.missed, r1.total_queries);
        assert_eq!(r3.resolved + r3.missed, r3.total_queries);
        single += r1.accuracy();
        triple += r3.accuracy();
        n += 1.0;
    }
    assert!(
        triple / n >= single / n,
        "3-way corroboration should not be less accurate: {:.2} vs {:.2}",
        triple / n,
        single / n
    );
}

#[test]
fn corroboration_costs_more_bandwidth() {
    let s = Scenario::build(ScenarioConfig::small().with_seed(7).with_fast_ratio(0.2));
    let plain = run_scenario(&s, RunOptions::new(Strategy::Lvf));
    let mut opts = RunOptions::new(Strategy::Lvf);
    opts.corroboration = 3;
    let corr = run_scenario(&s, opts);
    assert!(
        corr.total_bytes > plain.total_bytes,
        "gathering extra evidence must cost bandwidth: {} vs {}",
        corr.total_bytes,
        plain.total_bytes
    );
    assert_eq!(corr.resolved + corr.missed, corr.total_queries);
}

#[test]
fn corroboration_with_single_provider_degrades_gracefully() {
    // The fig-1-like scenario has one provider per label; corroboration=3
    // must fall back to accepting the lone vote instead of hanging.
    let mut s = approx_scenario();
    // Remove the wide camera so each label has exactly one provider.
    let mut catalog = Catalog::new();
    catalog.add(ObjectSpec {
        name: "/city/seg/x/cam/a".parse().unwrap(),
        covers: vec![Label::new("x")],
        size: 300_000,
        source: NodeId(2),
        class: DynamicsClass::Slow,
        validity: SimDuration::from_secs(600),
    });
    s.catalog = catalog;
    s.queries.truncate(1);
    s.queries[0].expr = Dnf::from_terms(vec![Term::all_of(["x"])]);
    s.queries[0].origin = NodeId(0);
    let mut opts = RunOptions::new(Strategy::Lvf);
    opts.corroboration = 3;
    let r = run_scenario(&s, opts);
    assert_eq!(r.resolved, 1, "single-provider labels must still resolve");
}

#[test]
fn reliability_profiles_learn_bad_sources() {
    // Corroborated runs accumulate per-object agreement statistics; the
    // compromised sources' objects must end up with worse scores on the
    // querying nodes.
    let s = Scenario::build(ScenarioConfig::small().with_seed(11).with_fast_ratio(0.0));
    let mut opts = RunOptions::new(Strategy::Lvf);
    opts.corroboration = 3;
    let bad = [NodeId(0), NodeId(1)];
    // Run manually to keep the simulator (run_scenario consumes it), using
    // the engine's building blocks.
    use dde_core::node::{AthenaNode, NodeConfig, SharedWorld};
    use dde_netsim::sim::Simulator;
    let mut config = NodeConfig::new(Strategy::Lvf);
    config.corroboration = 3;
    config.prob_true_prior = s.config.prob_viable;
    let shared = Arc::new(SharedWorld {
        catalog: s.catalog.clone(),
        world: s.world.clone(),
        config,
    });
    let annotator = Arc::new(BiasedSourcesAnnotator::new(bad));
    let nodes: Vec<AthenaNode> = (0..s.topology.len())
        .map(|_| AthenaNode::new(Arc::clone(&shared), annotator.clone()))
        .collect();
    let mut sim = Simulator::new(s.topology.clone(), nodes, 3);
    for q in &s.queries {
        sim.schedule_external(q.issue_at, q.origin, q.clone().into());
    }
    sim.run_until(SimTime::from_secs(400));

    let mut bad_agree = 0u64;
    let mut bad_disagree = 0u64;
    let mut good_agree = 0u64;
    let mut good_disagree = 0u64;
    for node in sim.nodes() {
        for source in (0..s.topology.len()).map(NodeId) {
            let (a, d) = node.reliability_of(source);
            if bad.contains(&source) {
                bad_agree += a;
                bad_disagree += d;
            } else {
                good_agree += a;
                good_disagree += d;
            }
        }
    }
    assert!(
        bad_disagree + good_disagree + bad_agree + good_agree > 0,
        "corroboration should have produced feedback"
    );
    let bad_score = bad_agree as f64 / (bad_agree + bad_disagree).max(1) as f64;
    let good_score = good_agree as f64 / (good_agree + good_disagree).max(1) as f64;
    assert!(
        good_score > bad_score,
        "good sources should profile better: good {good_score:.2} vs bad {bad_score:.2}"
    );
}

#[test]
fn anticipatory_announcement_cuts_latency() {
    // §VIII: announcing the decision structure ahead of issue time lets
    // sources stage evidence, so the decision lands sooner.
    let mut cfg = ScenarioConfig::small().with_seed(21).with_fast_ratio(0.2);
    cfg.issue_offset = SimDuration::from_secs(60);
    let s = Scenario::build(cfg);

    let mut plain = RunOptions::new(Strategy::LvfLabelShare);
    plain.prefetch = Some(true);
    let r_plain = run_scenario(&s, plain);

    let mut ahead = RunOptions::new(Strategy::LvfLabelShare);
    ahead.prefetch = Some(true);
    ahead.announce_lead = Some(SimDuration::from_secs(45));
    let r_ahead = run_scenario(&s, ahead);

    assert!(r_ahead.resolved >= r_plain.resolved);
    let (Some(l_ahead), Some(l_plain)) = (
        r_ahead.mean_resolution_latency,
        r_plain.mean_resolution_latency,
    ) else {
        panic!("both runs should decide something");
    };
    assert!(
        l_ahead <= l_plain,
        "anticipation should not slow decisions: {l_ahead} vs {l_plain}"
    );
}

#[test]
fn periodic_queries_reuse_network_state() {
    // §IV-B periodic decisions: under label sharing, repeating the same
    // queries costs much less than 2× a single round, because the second
    // round is served from labels and caches that the first round left
    // behind (slow labels outlive the period).
    let base = Scenario::build(ScenarioConfig::small().with_seed(23).with_fast_ratio(0.0));
    let single = run_scenario(&base, RunOptions::new(Strategy::LvfLabelShare));

    let periodic = Scenario::build(ScenarioConfig::small().with_seed(23).with_fast_ratio(0.0))
        .with_periodic_queries(SimDuration::from_secs(200), 2);
    let double = run_scenario(&periodic, RunOptions::new(Strategy::LvfLabelShare));

    assert_eq!(double.total_queries, single.total_queries * 2);
    assert_eq!(
        double.resolved, double.total_queries,
        "periodic rounds should all resolve"
    );
    assert!(
        (double.total_bytes as f64) < single.total_bytes as f64 * 1.7,
        "second round should ride on cached state: {} vs 2x{}",
        double.total_bytes,
        single.total_bytes
    );
}

#[test]
fn utility_triage_drops_redundant_pushes() {
    // §V-B: with triage on, redundant background pushes are dropped at the
    // link, saving bandwidth without hurting resolution. Redundancy needs
    // provider overlap, so this runs at the paper scale.
    let s = Scenario::build(ScenarioConfig::default().with_seed(31).with_fast_ratio(0.2));
    let mut plain = RunOptions::new(Strategy::Lvf);
    plain.prefetch = Some(true);
    let r_plain = run_scenario(&s, plain);
    assert_eq!(r_plain.triage_drops, 0);

    let mut triaged = RunOptions::new(Strategy::Lvf);
    triaged.prefetch = Some(true);
    triaged.triage_threshold = Some(0.5);
    let r_triaged = run_scenario(&s, triaged);

    assert!(r_triaged.triage_drops > 0, "triage should drop something");
    assert!(r_triaged.total_bytes <= r_plain.total_bytes);
    assert!(r_triaged.resolved + 1 >= r_plain.resolved);
}

//! Conservation invariants of the `dde-obs` cost ledger.
//!
//! The ledger's claim is accounting-grade: every transmitted byte and
//! message lands in exactly one bucket (a decision query or the explicit
//! overhead bucket), so per-query charges plus overhead must equal the
//! simulator's own global counters — across scenarios, seeds, strategies,
//! and fault schedules. Likewise the critical-path walk partitions each
//! resolved query's observed latency exactly, and folding a serialized
//! JSONL trace offline must reproduce the live ledger bit-for-bit.

use dde_core::prelude::*;
use dde_core::Strategy;
use dde_netsim::fault::FaultSchedule;
use dde_netsim::NodeId;
use dde_obs::{CostLedger, JsonlSink, SharedSink};
use dde_workload::scenario::{Scenario, ScenarioConfig};
use proptest::prelude::*;

fn scenario(seed: u64, fast_ratio: f64) -> Scenario {
    Scenario::build(
        ScenarioConfig::small()
            .with_seed(seed)
            .with_fast_ratio(fast_ratio),
    )
}

/// Runs observed with a JSONL sink; returns the report (carrying the live
/// ledger) and the serialized trace.
fn observed_run(
    seed: u64,
    fast_ratio: f64,
    strategy: Strategy,
    faults: FaultSchedule,
) -> (RunReport, String) {
    let sink = SharedSink::new(JsonlSink::new(Vec::new()));
    let handle = sink.clone();
    let mut options = RunOptions::new(strategy);
    options.seed = seed ^ 0x5eed;
    options.faults = faults;
    let report = run_scenario_observed(&scenario(seed, fast_ratio), options, Box::new(sink));
    let trace = String::from_utf8(handle.with(|j| j.get_ref().clone())).expect("trace is UTF-8");
    (report, trace)
}

/// Every invariant the ledger promises, checked against one run.
fn check_conservation(report: &RunReport, trace: &str) -> Result<(), TestCaseError> {
    let live = report
        .ledger
        .as_ref()
        .expect("observed runs carry a ledger");

    // 1. Per-query charges + overhead == the simulator's global counters.
    prop_assert!(live.conserves(), "live ledger must conserve");
    prop_assert_eq!(
        live.total_bytes,
        report.total_bytes,
        "ledger byte total must equal the simulator's bytes_sent"
    );
    prop_assert_eq!(
        live.attributed_bytes() + live.overhead.bytes,
        report.total_bytes
    );

    // 2. Critical-path segments partition each resolved query's latency.
    for (qid, cost) in &live.queries {
        if let Some(latency_us) = cost.latency_us {
            if cost.outcome.as_deref() != Some("missed") {
                prop_assert_eq!(
                    cost.path().total_us(),
                    latency_us,
                    "query {} path segments must sum to its latency",
                    qid
                );
            }
        }
    }

    // 3. The offline fold of the serialized trace reproduces the live
    //    ledger exactly.
    let offline = CostLedger::from_jsonl(trace).expect("trace parses");
    prop_assert_eq!(&offline, live, "offline fold must equal the live ledger");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation holds across scenario seeds, mixes, and strategies on
    /// fault-free runs.
    #[test]
    fn ledger_conserves_across_seeds_and_strategies(
        seed in 1u64..200,
        fast_idx in 0usize..4,
        strategy_idx in 0usize..Strategy::ALL.len(),
    ) {
        let fast_ratio = [0.0, 0.2, 0.6, 1.0][fast_idx];
        let strategy = Strategy::ALL[strategy_idx];
        let (report, trace) = observed_run(seed, fast_ratio, strategy, FaultSchedule::new());
        check_conservation(&report, &trace)?;
    }

    /// Conservation survives node churn and link outages: retransmissions
    /// and lost bytes are still charged to exactly one bucket.
    #[test]
    fn ledger_conserves_under_faults(
        seed in 1u64..200,
        crash_node in 0usize..4,
        crash_at_s in 5u64..40,
        downtime_s in 5u64..30,
        link_outage in any::<bool>(),
    ) {
        let mut faults = FaultSchedule::new();
        let at = dde_logic::time::SimTime::from_secs(crash_at_s);
        let up = dde_logic::time::SimTime::from_secs(crash_at_s + downtime_s);
        if link_outage {
            faults.link_down_at(at, NodeId(crash_node), NodeId(crash_node + 1));
            faults.link_up_at(up, NodeId(crash_node), NodeId(crash_node + 1));
        } else {
            faults.crash_at(at, NodeId(crash_node));
            faults.recover_at(up, NodeId(crash_node));
        }
        let (report, trace) = observed_run(seed, 0.4, Strategy::LvfLabelShare, faults);
        check_conservation(&report, &trace)?;
    }
}

/// Runs observed on the sharded parallel engine; returns the report and
/// the serialized trace.
fn sharded_observed_run(seed: u64, threads: usize, faults: FaultSchedule) -> (RunReport, String) {
    let sink = SharedSink::new(JsonlSink::new(Vec::new()));
    let handle = sink.clone();
    let mut options = RunOptions::new(Strategy::LvfLabelShare);
    options.seed = seed ^ 0x5eed;
    options.faults = faults;
    let report =
        run_scenario_sharded_observed(&scenario(seed, 0.4), options, threads, Box::new(sink));
    let trace = String::from_utf8(handle.with(|j| j.get_ref().clone())).expect("trace is UTF-8");
    (report, trace)
}

/// Conservation extends to sharded runs: per-query charges plus overhead
/// equal the global totals at every thread count, and the ledger itself is
/// thread-count invariant.
#[test]
fn ledger_conserves_on_sharded_runs_at_any_thread_count() {
    let seed = 21;
    let mut baseline: Option<RunReport> = None;
    for threads in [1, 2, 4, 8] {
        let (report, trace) = sharded_observed_run(seed, threads, FaultSchedule::new());
        check_conservation(&report, &trace)
            .unwrap_or_else(|e| panic!("conservation failed at {threads} threads: {e}"));
        if let Some(base) = &baseline {
            assert_eq!(
                base.ledger, report.ledger,
                "ledger differs at {threads} threads"
            );
            assert_eq!(base, &report, "report differs at {threads} threads");
        } else {
            baseline = Some(report);
        }
    }
}

/// Sharded conservation also survives fault injection.
#[test]
fn sharded_ledger_conserves_under_faults() {
    let seed = 29;
    // The sharded engine validates fault targets against the topology, so
    // take a link that actually exists: node 0 and its first neighbor.
    let outage_peer = scenario(seed, 0.4)
        .topology
        .neighbors(NodeId(0))
        .next()
        .expect("node 0 has a neighbor");
    let mut faults = FaultSchedule::new();
    faults.crash_at(dde_logic::time::SimTime::from_secs(10), NodeId(2));
    faults.recover_at(dde_logic::time::SimTime::from_secs(40), NodeId(2));
    faults.link_down_at(
        dde_logic::time::SimTime::from_secs(15),
        NodeId(0),
        outage_peer,
    );
    faults.link_up_at(
        dde_logic::time::SimTime::from_secs(60),
        NodeId(0),
        outage_peer,
    );
    let mut baseline: Option<CostLedger> = None;
    for threads in [1, 4] {
        let (report, trace) = sharded_observed_run(seed, threads, faults.clone());
        check_conservation(&report, &trace)
            .unwrap_or_else(|e| panic!("conservation failed at {threads} threads: {e}"));
        let ledger = report.ledger.clone().expect("observed runs carry a ledger");
        if let Some(base) = &baseline {
            assert_eq!(base, &ledger, "faulted ledger differs at {threads} threads");
        } else {
            baseline = Some(ledger);
        }
    }
}

/// Two same-seed runs must produce byte-identical attribution JSON — the
/// property `dde-trace attribute --json` inherits, since it renders
/// exactly this document from the trace.
#[test]
fn same_seed_attribution_json_is_byte_identical() {
    let run = || {
        let (_, trace) = observed_run(9, 0.4, Strategy::LvfLabelShare, FaultSchedule::new());
        CostLedger::from_jsonl(&trace)
            .expect("trace parses")
            .to_json_value()
            .to_pretty_string()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed attribution documents must be identical");
}

/// The ledger actually attributes work in a small scenario: queries exist,
/// bytes are charged, and resolved queries carry critical paths.
#[test]
fn ledger_attributes_real_work() {
    let (report, _) = observed_run(3, 0.4, Strategy::Lvf, FaultSchedule::new());
    let ledger = report.ledger.as_ref().expect("ledger");
    assert!(!ledger.queries.is_empty(), "queries should be charged");
    assert!(ledger.attributed_bytes() > 0, "bytes should be attributed");
    assert!(
        report.cost_per_decision().is_some(),
        "cost per decision should be available"
    );
    let resolved_with_path = ledger
        .queries
        .values()
        .filter(|c| c.latency_us.is_some() && c.path().total_us() > 0)
        .count();
    assert!(
        resolved_with_path > 0,
        "resolved queries should carry non-trivial critical paths"
    );
}

//! Thread-count invariance of the *adaptive* planning loop.
//!
//! The online estimators (`dde-sched::adaptive`) update only from
//! trace-visible events, so the adaptive run inherits the sharded
//! engine's contract unchanged: for a given scenario, seed, and
//! [`AdaptiveConfig`], the thread count chooses how the work is
//! scheduled, never what the estimators learn or which queries the
//! admission gate sheds. These tests enforce byte-identical JSONL
//! traces and equal `RunReport`s at 1, 4, and 8 threads on the bands
//! where the loop actually does something: node churn (reliability
//! learning) and an overload burst with the admission gate engaged.

use dde_core::prelude::*;
use dde_core::Strategy;
use dde_obs::{diff_jsonl, JsonlSink, SharedSink};
use dde_sched::adaptive::{AdaptiveConfig, AdmissionPolicy};
use dde_workload::scenario::{Scenario, ScenarioConfig};

const THREADS: [usize; 3] = [1, 4, 8];

fn options(seed: u64, adaptive: AdaptiveConfig) -> RunOptions {
    let mut options = RunOptions::new(Strategy::Lvf);
    options.seed = seed ^ 0xada;
    options.adaptive = Some(adaptive);
    options
}

/// Runs the scenario sharded over `threads` workers with a JSONL sink
/// and returns the serialized trace plus the report.
fn sharded_trace(scenario: &Scenario, options: RunOptions, threads: usize) -> (String, RunReport) {
    let sink = SharedSink::new(JsonlSink::new(Vec::new()));
    let handle = sink.clone();
    let report = run_scenario_sharded_observed(scenario, options, threads, Box::new(sink));
    let trace = String::from_utf8(handle.with(|j| j.get_ref().clone())).expect("trace is UTF-8");
    (trace, report)
}

fn assert_equivalent_across_threads(band: &str, scenario: &Scenario, options: &RunOptions) {
    let (base_trace, base_report) = sharded_trace(scenario, options.clone(), THREADS[0]);
    assert!(
        !base_trace.is_empty(),
        "{band}: trace should capture events"
    );
    for &threads in &THREADS[1..] {
        let (trace, report) = sharded_trace(scenario, options.clone(), threads);
        let diff = diff_jsonl(&base_trace, &trace);
        assert!(
            diff.is_identical(),
            "{band}: structural divergence at {threads} threads: {}",
            diff.render()
        );
        assert_eq!(
            base_trace, trace,
            "{band}: trace bytes differ at {threads} threads"
        );
        assert_eq!(
            base_report, report,
            "{band}: RunReport differs at {threads} threads"
        );
    }
}

#[test]
fn learning_run_is_thread_count_invariant_under_churn() {
    // Churn exercises the reliability estimator (fetch timeouts feed it)
    // and forces replanning, so learned state actually steers decisions.
    for seed in [7, 13] {
        let scenario = Scenario::build(
            ScenarioConfig::small()
                .with_seed(seed)
                .with_fast_ratio(0.4)
                .with_churn(0.5),
        );
        assert!(
            !scenario.faults.is_empty(),
            "churn band should install node faults"
        );
        let options = options(seed, AdaptiveConfig::default());
        assert_equivalent_across_threads("adaptive churn", &scenario, &options);
    }
}

#[test]
fn admission_gated_run_is_thread_count_invariant_on_the_overload_band() {
    let seed = 11;
    let scenario = Scenario::build(ScenarioConfig::overload().with_seed(seed));
    let gated = AdaptiveConfig {
        admission: Some(AdmissionPolicy::default()),
        ..AdaptiveConfig::default()
    };
    let mut opts = options(seed, gated);
    // The half-duplex medium is what makes the burst an overload (one
    // transmitter per node); it is also the harder scheduling case for
    // the sharded engine, so it is the band worth pinning.
    opts.medium = dde_netsim::MediumMode::HalfDuplexTx;
    let report =
        run_scenario_sharded_observed(&scenario, opts.clone(), 1, Box::new(dde_obs::NullSink));
    assert!(
        report.admission_shed + report.admission_deferred > 0,
        "overload band should engage the admission gate"
    );
    assert_equivalent_across_threads("adaptive admission", &scenario, &opts);
}

#[test]
fn classic_and_sharded_adaptive_runs_agree() {
    // The single-threaded engine and the sharded engine must tell the
    // same story for an adaptive run: equal `RunReport`s, including the
    // estimator-driven plan outcomes and every admission counter. (Trace
    // *bytes* are compared across thread counts above, not across
    // engines — the sharded engine merge-orders its stream.)
    let seed = 19;
    let scenario = Scenario::build(
        ScenarioConfig::small()
            .with_seed(seed)
            .with_fast_ratio(0.4)
            .with_churn(0.3),
    );
    let opts = options(seed, AdaptiveConfig::default());
    let classic = run_scenario(&scenario, opts.clone());
    for threads in THREADS {
        let sharded = run_scenario_sharded(&scenario, opts.clone(), threads);
        assert_eq!(classic, sharded, "reports differ at {threads} threads");
    }
}

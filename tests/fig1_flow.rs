//! Reproduces the message flow of the paper's Fig. 1 as a checked test:
//! three nodes A — B — C, a query at A over two objects sourced at C,
//! prefetch staging, and the forwarder cache hit.

use dde_core::prelude::*;
use dde_logic::dnf::{Dnf, Term};
use dde_logic::label::Label;
use dde_logic::time::{SimDuration, SimTime};
use dde_netsim::topology::{LinkSpec, NodeId, Topology};
use dde_workload::catalog::{Catalog, ObjectSpec};
use dde_workload::grid::RoadGrid;
use dde_workload::scenario::{QueryInstance, Scenario, ScenarioConfig};
use dde_workload::world::{DynamicsClass, WorldModel};

fn fig1_scenario() -> Scenario {
    let mut config = ScenarioConfig::small();
    config.deadline = SimDuration::from_secs(60);
    config.prob_viable = 1.0;

    let topology = Topology::line(3, LinkSpec::mbps1());
    let slow = SimDuration::from_secs(600);

    let mut world = WorldModel::new(1);
    world.register(Label::new("cond_u"), DynamicsClass::Slow, slow, 1.0);
    world.register(Label::new("cond_v"), DynamicsClass::Slow, slow, 1.0);

    let mut catalog = Catalog::new();
    for (obj, label, kb) in [("u", "cond_u", 400u64), ("v", "cond_v", 500)] {
        catalog.add(ObjectSpec {
            name: format!("/fig1/{obj}").parse().expect("valid"),
            covers: vec![Label::new(label)],
            size: kb * 1000,
            source: NodeId(2),
            class: DynamicsClass::Slow,
            validity: slow,
        });
    }

    let queries = vec![QueryInstance {
        id: 0,
        origin: NodeId(0),
        expr: Dnf::from_terms(vec![Term::all_of(["cond_u", "cond_v"])]),
        deadline: config.deadline,
        issue_at: SimTime::ZERO,
    }];

    Scenario {
        grid: RoadGrid::new(2, 2),
        node_sites: Vec::new(),
        config,
        topology,
        world,
        catalog,
        queries,
        faults: dde_netsim::fault::FaultSchedule::new(),
    }
}

#[test]
fn query_resolves_without_prefetch() {
    let s = fig1_scenario();
    let r = run_scenario(&s, RunOptions::new(Strategy::Lvf));
    assert_eq!(r.resolved, 1);
    assert_eq!(r.viable, 1);
    assert_eq!(r.prefetch_pushes, 0);
    // Both objects crossed both hops exactly once: (400 + 500) KB × 2 hops
    // plus small headers.
    let data = *r.bytes_by_kind.get("data").unwrap();
    assert!((1_800_000..1_810_000).contains(&data), "data bytes {data}");
}

#[test]
fn prefetch_push_stages_objects_and_serves_cache_hit() {
    let s = fig1_scenario();
    let mut opts = RunOptions::new(Strategy::Lvf);
    opts.prefetch = Some(true);
    let r = run_scenario(&s, opts);
    assert_eq!(r.resolved, 1);
    // The source (C) pushed both u and v upon hearing the announcement.
    assert_eq!(r.prefetch_pushes, 2, "C should push u and v");
    // A's fetch met a staged copy before reaching the source.
    assert!(r.cache_hits >= 1, "expected a forwarder/source cache hit");
    // Staging cost extra bytes relative to the pure-fetch run.
    let plain = run_scenario(&fig1_scenario(), RunOptions::new(Strategy::Lvf));
    assert!(r.total_bytes > plain.total_bytes);
    // And the decision is not later than without prefetch.
    assert!(
        r.mean_resolution_latency.unwrap() <= plain.mean_resolution_latency.unwrap(),
        "prefetch must not delay the decision"
    );
}

#[test]
fn announcement_reaches_every_node() {
    let s = fig1_scenario();
    let r = run_scenario(&s, RunOptions::new(Strategy::Lvf));
    // A announces to B; B relays to C: 2 announce transmissions.
    let announce = r.bytes_by_kind.get("announce").copied().unwrap_or(0);
    assert!(announce > 0, "announcement must be flooded");
}

#[test]
fn label_sharing_variant_shares_back_toward_source() {
    let s = fig1_scenario();
    let r = run_scenario(&s, RunOptions::new(Strategy::LvfLabelShare));
    assert_eq!(r.resolved, 1);
    // A annotated u and v and propagated the labels toward C.
    let label_bytes = r.bytes_by_kind.get("label").copied().unwrap_or(0);
    assert!(label_bytes > 0, "labels should flow back into the network");
}

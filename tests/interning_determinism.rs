//! Determinism guarantees of the `dde-naming` component interner.
//!
//! `Name` components are interned into a process-global, insertion-ordered
//! table ([`dde_naming::symbol`]). The contract has two halves:
//!
//! 1. **Interning order is seed-deterministic**: two same-seed runs
//!    encounter components in the same order, so two fresh [`Interner`]
//!    tables fed by them end up identical, id for id.
//! 2. **Nothing user-visible depends on id assignment anyway**: trace
//!    bytes, `results_*.txt`, and map iteration are derived from resolved
//!    strings, so a repeated same-seed run — which interns *nothing new*
//!    into the warm global table — still serializes byte-identically.

use dde_core::prelude::*;
use dde_core::Strategy;
use dde_naming::symbol::{global_len, Interner};
use dde_naming::Name;
use dde_obs::{JsonlSink, SharedSink};
use dde_workload::scenario::{Scenario, ScenarioConfig};

/// The global interner is process-wide and the harness runs tests on
/// worker threads; every test in this file takes this lock so the
/// `global_len()` assertions can't observe another test's interning.
#[allow(clippy::disallowed_types)] // test-harness serialization, not shard state
static INTERNER_QUIESCENT: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn small_scenario(seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig::small().with_seed(seed).with_fast_ratio(0.4))
}

/// The component strings of every catalog object, in catalog order — the
/// order a cold run would intern them in.
fn component_sequence(scenario: &Scenario) -> Vec<String> {
    scenario
        .catalog
        .objects()
        .iter()
        .flat_map(|spec| spec.name.component_strs().map(str::to_string))
        .collect()
}

#[test]
fn same_seed_runs_intern_in_identical_order() {
    let _quiet = INTERNER_QUIESCENT.lock().unwrap_or_else(|e| e.into_inner());

    let a = component_sequence(&small_scenario(21));
    let b = component_sequence(&small_scenario(21));
    assert!(!a.is_empty(), "scenario should advertise objects");
    assert_eq!(a, b, "same-seed component sequences must match");

    // Feed both sequences into fresh standalone tables: identical
    // insertion-ordered snapshots, identical dense ids.
    let mut ta = Interner::new();
    let mut tb = Interner::new();
    let ids_a: Vec<u32> = a.iter().map(|c| ta.intern(c).id()).collect();
    let ids_b: Vec<u32> = b.iter().map(|c| tb.intern(c).id()).collect();
    assert_eq!(ids_a, ids_b, "interning order must be seed-deterministic");
    assert_eq!(ta.snapshot(), tb.snapshot());
    assert_eq!(ta.len(), tb.len());
}

#[test]
fn different_seeds_still_intern_deterministically() {
    let _quiet = INTERNER_QUIESCENT.lock().unwrap_or_else(|e| e.into_inner());

    // Different seeds may intern different components, but each seed's
    // sequence is reproducible in isolation.
    for seed in [3u64, 4, 5] {
        let a = component_sequence(&small_scenario(seed));
        let b = component_sequence(&small_scenario(seed));
        assert_eq!(a, b, "seed {seed} must reproduce its component order");
    }
}

/// Runs the scenario with a JSONL sink into memory and returns the bytes.
fn jsonl_trace(seed: u64) -> Vec<u8> {
    let scenario = small_scenario(seed);
    let mut options = RunOptions::new(Strategy::LvfLabelShare);
    options.seed = seed ^ 0x5eed;
    let sink = SharedSink::new(JsonlSink::new(Vec::new()));
    let handle = sink.clone();
    let _ = run_scenario_observed(&scenario, options, Box::new(sink));
    handle.with(|j| j.get_ref().clone())
}

#[test]
fn warm_interner_changes_nothing_observable() {
    let _quiet = INTERNER_QUIESCENT.lock().unwrap_or_else(|e| e.into_inner());

    // First run warms the global table; the repeat must intern nothing new
    // (same seed → same component universe) and must serialize the exact
    // same trace bytes, proving no output depends on interner state age.
    let first = jsonl_trace(33);
    let len_after_first = global_len();
    let second = jsonl_trace(33);
    let len_after_second = global_len();
    assert!(!first.is_empty(), "trace should capture events");
    assert_eq!(
        len_after_first, len_after_second,
        "a repeated same-seed run must not intern new components"
    );
    assert_eq!(
        first, second,
        "trace bytes must be identical across a cold-ish and warm run"
    );
}

#[test]
fn interned_names_round_trip_through_display() {
    let _quiet = INTERNER_QUIESCENT.lock().unwrap_or_else(|e| e.into_inner());

    // The I/O boundary: parse → intern → Display reproduces input bytes.
    let inputs = [
        "/city/marketplace/south/noon/camera1",
        "/a",
        "/",
        "/x-1/y_2/z.3",
    ];
    for s in inputs {
        let name: Name = s.parse().expect("valid name");
        assert_eq!(name.to_string(), s);
    }
}

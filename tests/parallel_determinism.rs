//! Cross-thread-count equivalence of the sharded parallel simulator.
//!
//! The conservative parallel engine's contract is exact: for a given
//! scenario and seed, the run is a pure function of the inputs — the
//! thread count only chooses how the work is scheduled, never what
//! happens. These tests enforce the strongest observable form of that
//! claim on every committed scenario band (fault-free baseline, node
//! churn, network partitions): **byte-identical JSONL traces** at 1, 2, 4,
//! and 8 threads, zero structural divergence under `dde-obs`'s differ, and
//! equal `RunReport`s (including the cost ledger) at every thread count.

use dde_core::prelude::*;
use dde_core::Strategy;
use dde_netsim::fault::FaultSchedule;
use dde_netsim::NodeId;
use dde_obs::{diff_jsonl, JsonlSink, SharedSink};
use dde_workload::scenario::{Scenario, ScenarioConfig};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn options(seed: u64, faults: FaultSchedule) -> RunOptions {
    let mut options = RunOptions::new(Strategy::LvfLabelShare);
    options.seed = seed ^ 0x5eed;
    options.faults = faults;
    options
}

/// Runs the scenario sharded over `threads` workers with a JSONL sink and
/// returns the serialized trace plus the report.
fn sharded_trace(
    scenario: &Scenario,
    seed: u64,
    faults: &FaultSchedule,
    threads: usize,
) -> (String, RunReport) {
    let sink = SharedSink::new(JsonlSink::new(Vec::new()));
    let handle = sink.clone();
    let report = run_scenario_sharded_observed(
        scenario,
        options(seed, faults.clone()),
        threads,
        Box::new(sink),
    );
    let trace = String::from_utf8(handle.with(|j| j.get_ref().clone())).expect("trace is UTF-8");
    (trace, report)
}

/// The equivalence check itself: every thread count reproduces the
/// 1-thread run byte for byte. `extra_faults` rides in via `RunOptions`
/// and is merged by the engine with whatever the scenario schedules.
fn assert_equivalent_across_threads(
    band: &str,
    scenario: &Scenario,
    seed: u64,
    extra_faults: &FaultSchedule,
) {
    let (base_trace, base_report) = sharded_trace(scenario, seed, extra_faults, THREADS[0]);
    assert!(
        !base_trace.is_empty(),
        "{band}: trace should capture events"
    );
    for &threads in &THREADS[1..] {
        let (trace, report) = sharded_trace(scenario, seed, extra_faults, threads);
        let diff = diff_jsonl(&base_trace, &trace);
        assert!(
            diff.is_identical(),
            "{band}: structural divergence at {threads} threads: {}",
            diff.render()
        );
        assert_eq!(
            base_trace, trace,
            "{band}: trace bytes differ at {threads} threads"
        );
        assert_eq!(
            base_report, report,
            "{band}: RunReport differs at {threads} threads"
        );
    }
}

#[test]
fn baseline_band_is_thread_count_invariant() {
    for seed in [7, 11] {
        let scenario =
            Scenario::build(ScenarioConfig::small().with_seed(seed).with_fast_ratio(0.4));
        assert_equivalent_across_threads("baseline", &scenario, seed, &FaultSchedule::new());
    }
}

#[test]
fn churn_band_is_thread_count_invariant() {
    let seed = 13;
    let scenario = Scenario::build(
        ScenarioConfig::small()
            .with_seed(seed)
            .with_fast_ratio(0.4)
            .with_churn(0.5),
    );
    assert!(
        !scenario.faults.is_empty(),
        "churn band should install node faults"
    );
    assert_equivalent_across_threads("churn", &scenario, seed, &FaultSchedule::new());
}

#[test]
fn partition_band_is_thread_count_invariant() {
    let seed = 17;
    let scenario = Scenario::build(ScenarioConfig::small().with_seed(seed).with_fast_ratio(0.4));
    // Cut half the nodes off mid-run, heal before the deadline horizon.
    let side: Vec<NodeId> = (0..scenario.topology.len() / 2).map(NodeId).collect();
    let mut faults = FaultSchedule::partition_at(
        &scenario.topology,
        dde_logic::time::SimTime::from_secs(20),
        &side,
    );
    faults.merge(&FaultSchedule::heal_partition_at(
        &scenario.topology,
        dde_logic::time::SimTime::from_secs(90),
        &side,
    ));
    assert!(!faults.is_empty(), "partition cut should sever links");
    assert_equivalent_across_threads("partitions", &scenario, seed, &faults);
}

#[test]
fn single_thread_sharded_report_matches_every_strategy_shape() {
    // The sweep's degenerate case: one region must still produce a full,
    // internally consistent report (every query accounted for).
    let seed = 23;
    let scenario = Scenario::build(ScenarioConfig::small().with_seed(seed).with_fast_ratio(0.4));
    let report = run_scenario_sharded(&scenario, options(seed, FaultSchedule::new()), 1);
    assert_eq!(report.total_queries, scenario.queries.len());
    assert_eq!(
        report.resolved + report.missed,
        report.total_queries,
        "every query ends resolved or missed"
    );
}

//! Property-style integration tests over the strategy stack: candidate
//! selection, pruning, and planner behavior against generated scenarios.

use dde_core::msg::QueryId;
use dde_core::query::QueryState;
use dde_core::strategy::{Priors, Strategy};
use dde_logic::label::Label;
use dde_logic::time::{SimDuration, SimTime};
use dde_sched::item::Channel;
use dde_workload::prelude::*;
use proptest::prelude::*;

fn scenario(seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig::small().with_seed(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Source-selected candidate sets cover exactly the coverable labels and
    /// never exceed cmp's candidate set.
    #[test]
    fn candidates_cover_and_shrink(seed in 0u64..200, qidx in 0usize..8) {
        let s = scenario(seed);
        let q = &s.queries[qidx % s.queries.len()];
        let labels = q.expr.labels();
        let cmp = Strategy::Comprehensive.candidates(&labels, &s.catalog, q.origin, &s.topology);
        let slt = Strategy::SelectedSources.candidates(&labels, &s.catalog, q.origin, &s.topology);
        prop_assert!(slt.len() <= cmp.len());
        // Every label with a provider is covered by the selected set.
        for label in &labels {
            if !s.catalog.providers_of(label).is_empty() {
                prop_assert!(
                    slt.iter().any(|&i| s.catalog.get(i).covers.contains(label)),
                    "label {label} lost by source selection"
                );
            }
        }
        // Candidate sets are deterministic.
        prop_assert_eq!(
            &slt,
            &Strategy::Lvf.candidates(&labels, &s.catalog, q.origin, &s.topology)
        );
    }

    /// The planner always proposes a fetch that (a) is in the candidate set
    /// and (b) covers a currently-unknown label; and for decision-driven
    /// strategies, a *relevant* one.
    #[test]
    fn next_request_is_sound(seed in 0u64..200, qidx in 0usize..8) {
        let s = scenario(seed);
        let inst = &s.queries[qidx % s.queries.len()];
        let labels = inst.expr.labels();
        let now = SimTime::from_secs(1);
        for strategy in Strategy::ALL {
            let cands = strategy.candidates(&labels, &s.catalog, inst.origin, &s.topology);
            let q = QueryState::new(QueryId(0), inst.expr.clone(), SimTime::ZERO, inst.deadline);
            let Some((idx, label)) = strategy.next_request(
                &q, &cands, &s.catalog, inst.origin, &s.topology, now, Channel::mbps1(),
                &Priors::Fixed(0.8),
            ) else {
                // Nothing to fetch on a fresh query only if no candidates.
                prop_assert!(cands.is_empty());
                continue;
            };
            prop_assert!(cands.contains(&idx), "{strategy} proposed non-candidate");
            prop_assert!(
                s.catalog.get(idx).covers.contains(&label),
                "{strategy} proposed object not covering its label"
            );
            prop_assert!(q.unknown_labels(now).contains(&label));
            if strategy.is_decision_driven() {
                prop_assert!(q.relevant_labels(now).contains(&label));
            }
        }
    }

    /// Pruning monotonicity: learning a falsifying label never makes the
    /// decision-driven relevant set larger.
    #[test]
    fn pruning_shrinks_relevant_set(seed in 0u64..100, qidx in 0usize..8) {
        let s = scenario(seed);
        let inst = &s.queries[qidx % s.queries.len()];
        let now = SimTime::from_secs(1);
        let mut q = QueryState::new(QueryId(0), inst.expr.clone(), SimTime::ZERO, inst.deadline);
        let before = q.relevant_labels(now);
        // Falsify the first label of the first term.
        let first_label: Label = inst.expr.terms()[0]
            .labels()
            .next()
            .expect("non-empty term")
            .clone();
        q.record_label(&first_label, false, now, SimDuration::from_secs(600));
        let after = q.relevant_labels(now);
        prop_assert!(after.len() <= before.len());
        prop_assert!(!after.contains(&first_label));
    }
}

#[test]
fn relevant_labels_subset_of_unknown() {
    let s = scenario(3);
    for inst in &s.queries {
        let q = QueryState::new(QueryId(0), inst.expr.clone(), SimTime::ZERO, inst.deadline);
        let now = SimTime::from_secs(2);
        let relevant = q.relevant_labels(now);
        let unknown = q.unknown_labels(now);
        assert!(relevant.is_subset(&unknown));
    }
}

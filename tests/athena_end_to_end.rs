//! End-to-end integration tests: full Athena runs over generated scenarios,
//! checking the cross-crate invariants the paper's evaluation relies on.

use dde_core::prelude::*;
use dde_workload::prelude::*;

fn scenario(seed: u64, fast_ratio: f64) -> Scenario {
    Scenario::build(
        ScenarioConfig::small()
            .with_seed(seed)
            .with_fast_ratio(fast_ratio),
    )
}

#[test]
fn every_query_reaches_a_terminal_state() {
    for strategy in Strategy::ALL {
        let s = scenario(10, 0.4);
        let r = run_scenario(&s, RunOptions::new(strategy));
        assert_eq!(
            r.resolved + r.missed,
            r.total_queries,
            "{strategy}: {} resolved + {} missed != {}",
            r.resolved,
            r.missed,
            r.total_queries
        );
    }
}

#[test]
fn decision_driven_strategies_resolve_more() {
    // A stressed variant of the small scenario (short deadline, full
    // dynamics, multiple queries per node), aggregated over seeds.
    let mut cmp_total = 0usize;
    let mut lvf_total = 0usize;
    for seed in 0..2 {
        let cfg = ScenarioConfig::default()
            .with_seed(20 + seed)
            .with_fast_ratio(0.8);
        let s = Scenario::build(cfg);
        cmp_total += run_scenario(&s, RunOptions::new(Strategy::Comprehensive)).resolved;
        lvf_total += run_scenario(&s, RunOptions::new(Strategy::Lvf)).resolved;
    }
    assert!(
        lvf_total > cmp_total,
        "lvf resolved {lvf_total} vs cmp {cmp_total}"
    );
}

#[test]
fn decision_driven_strategies_use_less_bandwidth() {
    let mut cmp_bytes = 0u64;
    let mut lvf_bytes = 0u64;
    for seed in 0..4 {
        let s = scenario(30 + seed, 0.4);
        cmp_bytes += run_scenario(&s, RunOptions::new(Strategy::Comprehensive)).total_bytes;
        lvf_bytes += run_scenario(&s, RunOptions::new(Strategy::Lvf)).total_bytes;
    }
    assert!(
        lvf_bytes < cmp_bytes,
        "lvf used {lvf_bytes} vs cmp {cmp_bytes}"
    );
}

#[test]
fn label_sharing_reduces_data_bytes() {
    let mut lvf_data = 0u64;
    let mut lvfl_data = 0u64;
    for seed in 0..4 {
        let s = scenario(40 + seed, 0.4);
        let lvf = run_scenario(&s, RunOptions::new(Strategy::Lvf));
        let lvfl = run_scenario(&s, RunOptions::new(Strategy::LvfLabelShare));
        lvf_data += *lvf.bytes_by_kind.get("data").unwrap_or(&0);
        lvfl_data += *lvfl.bytes_by_kind.get("data").unwrap_or(&0);
    }
    assert!(
        lvfl_data <= lvf_data,
        "label sharing should not increase data bytes: {lvfl_data} vs {lvf_data}"
    );
}

#[test]
fn ground_truth_decisions_are_accurate() {
    for strategy in [
        Strategy::Lvf,
        Strategy::LvfLabelShare,
        Strategy::LowestCostFirst,
    ] {
        let s = scenario(50, 0.4);
        let r = run_scenario(&s, RunOptions::new(strategy));
        assert!(r.resolved > 0, "{strategy}: nothing resolved");
        assert_eq!(
            r.accuracy(),
            1.0,
            "{strategy}: decisions based on fresh ground-truth annotations must be accurate"
        );
    }
}

#[test]
fn runs_are_deterministic() {
    let s = scenario(60, 0.4);
    let a = run_scenario(&s, RunOptions::new(Strategy::LvfLabelShare));
    let b = run_scenario(&s, RunOptions::new(Strategy::LvfLabelShare));
    assert_eq!(a.total_bytes, b.total_bytes);
    assert_eq!(a.resolved, b.resolved);
    assert_eq!(a.events, b.events);
    assert_eq!(a.mean_resolution_latency, b.mean_resolution_latency);
}

#[test]
fn higher_dynamics_never_help_baselines() {
    // The Fig. 2 trend: cmp's resolution ratio is (weakly) worse at much
    // higher dynamics, aggregated over seeds.
    let mut calm = 0usize;
    let mut stormy = 0usize;
    for seed in 0..4 {
        calm += run_scenario(
            &scenario(70 + seed, 0.0),
            RunOptions::new(Strategy::Comprehensive),
        )
        .resolved;
        stormy += run_scenario(
            &scenario(70 + seed, 1.0),
            RunOptions::new(Strategy::Comprehensive),
        )
        .resolved;
    }
    assert!(
        stormy <= calm,
        "cmp resolved more under max dynamics ({stormy}) than none ({calm})"
    );
}

#[test]
fn distrust_forces_raw_data() {
    // With TrustNone, lvfl degenerates to lvf-like behavior: no label hits.
    let s = scenario(80, 0.4);
    let mut opts = RunOptions::new(Strategy::LvfLabelShare);
    opts.trust = TrustPolicy::TrustNone;
    let r = run_scenario(&s, opts);
    assert_eq!(
        r.label_hits, 0,
        "distrusting nodes must not consume shared labels"
    );
    assert_eq!(r.resolved + r.missed, r.total_queries);
}

#[test]
fn prefetch_stages_content_without_hurting_resolution() {
    let mut off_res = 0usize;
    let mut on_res = 0usize;
    let mut pushes = 0u64;
    for seed in 0..3 {
        let s = scenario(90 + seed, 0.2);
        let off = run_scenario(&s, RunOptions::new(Strategy::Lvf));
        let mut opts = RunOptions::new(Strategy::Lvf);
        opts.prefetch = Some(true);
        let on = run_scenario(&s, opts);
        off_res += off.resolved;
        on_res += on.resolved;
        pushes += on.prefetch_pushes;
        assert_eq!(off.prefetch_pushes, 0);
    }
    assert!(pushes > 0, "prefetch should actually push");
    // Background pushes must not materially hurt resolution.
    assert!(
        on_res + 2 >= off_res,
        "prefetch degraded resolution: {on_res} vs {off_res}"
    );
}

#[test]
fn paper_scale_scenario_smoke() {
    // One full-size run (8×8, 30 nodes, 90 queries) to catch scaling bugs;
    // release-mode benches cover the real sweeps.
    let s = Scenario::build(ScenarioConfig::default().with_seed(5).with_fast_ratio(0.4));
    let r = run_scenario(&s, RunOptions::new(Strategy::LvfLabelShare));
    assert_eq!(r.total_queries, 90);
    assert!(
        r.resolution_ratio() > 0.8,
        "lvfl at paper scale resolved only {:.2}",
        r.resolution_ratio()
    );
    assert_eq!(r.accuracy(), 1.0);
}

//! Cross-crate integration tests live in the sibling `*.rs` files.

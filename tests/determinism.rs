//! Determinism regression: the whole simulation — including fault
//! injection — is a pure function of (scenario seed, run seed, fault
//! schedule). Two runs with identical inputs must produce *identical*
//! `RunReport`s, down to per-query records and byte counters.

use dde_core::prelude::*;
use dde_logic::time::SimTime;
use dde_netsim::topology::NodeId;
use dde_workload::prelude::*;

fn churny(seed: u64, churn: f64) -> Scenario {
    let mut cfg = ScenarioConfig::small().with_seed(seed).with_fast_ratio(0.4);
    cfg.churn_rate = churn;
    Scenario::build(cfg)
}

#[test]
fn same_seed_same_report_without_faults() {
    let s = churny(11, 0.0);
    for strategy in Strategy::ALL {
        let a = run_scenario(&s, RunOptions::new(strategy));
        let b = run_scenario(&s, RunOptions::new(strategy));
        assert_eq!(a, b, "fault-free run is not deterministic for {strategy:?}");
    }
}

#[test]
fn same_seed_same_fault_schedule_same_report() {
    // Generated churn plus hand-placed faults on top.
    let s = churny(12, 0.3);
    assert!(!s.faults.is_empty(), "30% churn should schedule faults");
    let make_options = || {
        let mut o = RunOptions::new(Strategy::Lvf);
        o.faults.crash_at(SimTime::from_secs(4), NodeId(1));
        o.faults.recover_at(SimTime::from_secs(30), NodeId(1));
        o.crash_wipes_cache = true;
        o
    };
    let a = run_scenario(&s, make_options());
    let b = run_scenario(&s, make_options());
    assert_eq!(a, b, "faulty run is not deterministic");
    assert!(a.fault_events >= 2, "installed faults must be reported");
}

#[test]
fn scenario_generation_is_deterministic_under_churn() {
    let a = churny(13, 0.2);
    let b = churny(13, 0.2);
    assert_eq!(a.faults, b.faults, "churn generation must be seed-pure");
    assert!(churny(14, 0.2).faults != a.faults || a.faults.is_empty());
}

#[test]
fn empty_fault_schedule_is_a_strict_no_op() {
    // An explicitly-installed empty schedule must not perturb the run
    // relative to the default options (which carry an empty schedule too):
    // no extra events, no RNG draws, identical report.
    let s = churny(15, 0.0);
    assert!(s.faults.is_empty());
    let baseline = run_scenario(&s, RunOptions::new(Strategy::LvfLabelShare));
    let mut opts = RunOptions::new(Strategy::LvfLabelShare);
    opts.faults.merge(&dde_netsim::fault::FaultSchedule::new());
    let explicit = run_scenario(&s, opts);
    assert_eq!(baseline, explicit);
    assert_eq!(baseline.fault_events, 0);
    assert_eq!(baseline.messages_dropped_by_fault, 0);
    assert_eq!(baseline.messages_purged_by_fault, 0);
}

/// The ISSUE acceptance bar: at 20% node churn every strategy still
/// accounts for every query, and the decision-driven strategies keep a
/// positive resolution ratio.
#[test]
fn twenty_percent_churn_degrades_gracefully_for_every_strategy() {
    let s = churny(16, 0.2);
    for strategy in Strategy::ALL {
        let r = run_scenario(&s, RunOptions::new(strategy));
        assert_eq!(
            r.resolved + r.missed,
            r.total_queries,
            "{strategy:?} lost queries under churn"
        );
        if matches!(strategy, Strategy::Lvf | Strategy::LvfLabelShare) {
            assert!(
                r.resolution_ratio() > 0.0,
                "{strategy:?} should keep resolving under 20% churn"
            );
        }
    }
}

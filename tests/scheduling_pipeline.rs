//! Cross-crate pipeline tests: generated workloads flowing through source
//! selection (dde-coverage), retrieval planning (dde-sched), and decision
//! logic (dde-logic) together — without the network in the loop.

use dde_coverage::setcover::{greedy_cover, Source};
use dde_logic::label::{Assignment, Label};
use dde_logic::meta::{ConditionMeta, Cost, MetaTable, Probability};
use dde_logic::time::{SimDuration, SimTime};
use dde_logic::truth::Truth;
use dde_sched::feasibility::is_feasible;
use dde_sched::hybrid::greedy_validity_shortcircuit;
use dde_sched::item::{Channel, RetrievalItem};
use dde_sched::lvf::schedulable;
use dde_sched::shortcircuit::plan_dnf;
use dde_workload::prelude::*;
use proptest::prelude::*;

fn scenario(seed: u64) -> Scenario {
    Scenario::build(ScenarioConfig::small().with_seed(seed))
}

/// Builds a MetaTable for a query from the scenario catalog (cheapest
/// provider per label).
fn meta_for(s: &Scenario, q: &QueryInstance) -> MetaTable {
    q.expr
        .labels()
        .into_iter()
        .filter_map(|l| {
            let spec = s.catalog.cheapest_provider(&l)?;
            Some((
                l.clone(),
                ConditionMeta::new(Cost::from_bytes(spec.size), spec.validity)
                    .with_prob(Probability::clamped(s.config.prob_viable)),
            ))
        })
        .collect()
}

#[test]
fn generated_queries_plan_end_to_end() {
    let s = scenario(1);
    for q in &s.queries {
        let meta = meta_for(&s, q);
        let plan = plan_dnf(&q.expr, &meta);
        assert_eq!(plan.terms.len(), q.expr.terms().len());
        assert!(plan.expected_cost() > 0.0);
        // Executing the plan against ground truth resolves the query.
        let mut asg = Assignment::new();
        let t0 = q.issue_at;
        for item in plan.flat_order() {
            if q.expr.resolution(&asg, t0).is_decided() {
                break;
            }
            let label = Label::new(item.label.as_str());
            let value = s.world.value(&label, t0);
            asg.set(label, Truth::from(value), t0, SimDuration::MAX);
        }
        assert!(
            q.expr.resolution(&asg, t0).is_decided(),
            "query {} undecided after full plan",
            q.id
        );
    }
}

#[test]
fn short_circuit_execution_reads_fewer_labels() {
    // Executing in planned order with pruning must never read more labels
    // than exhaustive retrieval.
    let s = scenario(2);
    for q in &s.queries {
        let meta = meta_for(&s, q);
        let plan = plan_dnf(&q.expr, &meta);
        let mut asg = Assignment::new();
        let mut reads = 0usize;
        for item in plan.flat_order() {
            if q.expr.resolution(&asg, q.issue_at).is_decided() {
                break;
            }
            let label = Label::new(item.label.as_str());
            if !q.expr.relevant_labels(&asg, q.issue_at).contains(&label) {
                continue; // pruned
            }
            let value = s.world.value(&label, q.issue_at);
            asg.set(label, Truth::from(value), q.issue_at, SimDuration::MAX);
            reads += 1;
        }
        assert!(reads <= q.expr.labels().len());
        assert!(q.expr.resolution(&asg, q.issue_at).is_decided());
    }
}

#[test]
fn cover_then_schedule_round_trip() {
    let s = scenario(3);
    let channel = Channel::new(s.config.link_bandwidth_bps);
    for q in s.queries.iter().take(4) {
        let labels = q.expr.labels();
        // Source selection over the catalog.
        let sources: Vec<Source<usize>> = s
            .catalog
            .objects()
            .iter()
            .enumerate()
            .filter(|(_, o)| o.covers.iter().any(|l| labels.contains(l)))
            .map(|(i, o)| {
                Source::new(
                    i,
                    o.covers.iter().filter(|l| labels.contains(*l)).cloned(),
                    Cost::from_bytes(o.size),
                )
            })
            .collect();
        let cover = greedy_cover(&labels, &sources);
        assert!(cover.is_complete(), "scenario guarantees full coverage");

        // Schedule the chosen objects through the validity-aware greedy.
        let items: Vec<RetrievalItem> = cover
            .chosen
            .iter()
            .map(|&k| {
                let spec = s.catalog.get(sources[k].id);
                RetrievalItem::new(
                    spec.name.to_string(),
                    Cost::from_bytes(spec.size),
                    spec.validity,
                )
            })
            .collect();
        let order = greedy_validity_shortcircuit(&items, channel, q.issue_at, q.deadline);
        assert_eq!(order.len(), items.len());
        // If LVF can meet the constraints, the hybrid order does too.
        if schedulable(&items, channel, q.issue_at, q.deadline) {
            assert!(is_feasible(&order, channel, q.issue_at, q.deadline));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// World values observed at plan-execution time always agree with the
    /// epoch model: re-reading within the same epoch yields the same value.
    #[test]
    fn world_reads_stable_within_epoch(seed in 0u64..50, offset_ms in 0u64..5_000) {
        let s = scenario(seed);
        let t = SimTime::from_micros(offset_ms * 1000);
        for (label, dynamics) in s.world.iter().take(20) {
            let v1 = s.world.value(label, t);
            let step = SimDuration::from_micros(dynamics.validity.as_micros() / 10);
            let t2 = t + step;
            if s.world.epoch(label, t) == s.world.epoch(label, t2) {
                prop_assert_eq!(v1, s.world.value(label, t2));
            }
        }
    }
}

//! Vendored, self-contained subset of the `serde` API.
//!
//! This workspace builds offline, so the external `serde` crate is replaced
//! by this minimal trait skeleton covering exactly what the workspace uses:
//! hand-written `Serialize`/`Deserialize` impls for string-shaped newtypes
//! (see `dde-logic`'s `Label`). There is no derive macro and no data-format
//! backend here; the traits exist so those impls keep compiling and so a
//! real serializer can be dropped in later without touching call sites.

#![warn(missing_docs)]

use core::fmt;

/// Errors produced while serializing or deserializing.
pub trait Error: Sized + fmt::Debug + fmt::Display {
    /// Builds an error from an arbitrary message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// A value that can be serialized.
pub trait Serialize {
    /// Writes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A serialization backend (string-shaped subset).
pub trait Serializer: Sized {
    /// Value returned on success.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
}

/// A value that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Reads a value out of `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A deserialization backend (string-shaped subset).
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Produces an owned string.
    fn deserialize_string(self) -> Result<String, Self::Error>;
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<String, D::Error> {
        deserializer.deserialize_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Msg(String);

    impl fmt::Display for Msg {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl Error for Msg {
        fn custom<T: fmt::Display>(msg: T) -> Msg {
            Msg(msg.to_string())
        }
    }

    /// A toy serializer proving the traits are implementable end to end.
    struct StrOut;

    impl Serializer for StrOut {
        type Ok = String;
        type Error = Msg;
        fn serialize_str(self, v: &str) -> Result<String, Msg> {
            Ok(v.to_string())
        }
    }

    struct StrIn(&'static str);

    impl<'de> Deserializer<'de> for StrIn {
        type Error = Msg;
        fn deserialize_string(self) -> Result<String, Msg> {
            Ok(self.0.to_string())
        }
    }

    #[test]
    fn string_round_trip() {
        let out = "hello".serialize(StrOut).unwrap();
        assert_eq!(out, "hello");
        let back = String::deserialize(StrIn("hello")).unwrap();
        assert_eq!(back, "hello");
    }
}

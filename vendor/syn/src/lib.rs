//! Vendored offline stand-in for the `syn` crate.
//!
//! This workspace builds with no registry access (see the workspace
//! `Cargo.toml`): external dependencies are replaced by minimal local
//! implementations of exactly the API surface the workspace uses. The only
//! consumer of `syn` here is `dde-lint`, whose determinism/panic-safety
//! rules need a *faithful token-level parse* of Rust source — correct
//! handling of strings, raw strings, char-vs-lifetime ambiguity, nested
//! block comments, and delimiter balance — but not a full item-level AST.
//!
//! Accordingly this stand-in exposes [`parse_file`], which lexes a source
//! file into a [`File`] of spanned [`Token`]s and reports [`Error`]s (with
//! line/column, like real `syn`) for unterminated literals/comments and
//! unbalanced delimiters. Unlike real `syn`, comments are preserved as
//! tokens: `dde-lint`'s `// lint: allow(...)` markers live in comments, and
//! rule scoping (`#[cfg(test)]` regions) is reconstructed from the token
//! stream by the consumer.

#![warn(missing_docs)]

use std::fmt;

/// The lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// A lifetime such as `'a` (including the leading quote).
    Lifetime,
    /// Any literal: integer, float, string, raw string, byte string, char.
    Literal,
    /// A single punctuation character (`.`, `:`, `#`, `!`, …).
    Punct,
    /// An opening delimiter: `(`, `[` or `{`.
    OpenDelim,
    /// A closing delimiter: `)`, `]` or `}`.
    CloseDelim,
    /// A line (`//…`) or block (`/* … */`) comment, text included.
    Comment,
}

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based source column of the token's first character.
    pub col: u32,
}

impl Token {
    /// Whether this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this token is a punctuation character with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// A fully lexed source file.
#[derive(Debug, Clone)]
pub struct File {
    tokens: Vec<Token>,
}

impl File {
    /// All tokens, in source order (comments included).
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }
}

/// A parse error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// 1-based line of the offending character.
    pub line: u32,
    /// 1-based column of the offending character.
    pub col: u32,
    msg: String,
}

impl Error {
    fn new(line: u32, col: u32, msg: impl Into<String>) -> Error {
        Error {
            line,
            col,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for Error {}

/// Convenience alias mirroring `syn::Result`.
pub type Result<T> = std::result::Result<T, Error>;

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xc0 != 0x80 {
            // Count Unicode scalar starts, not continuation bytes.
            self.col += 1;
        }
        Some(b)
    }

    fn text_since(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn error(&self, msg: impl Into<String>) -> Error {
        Error::new(self.line, self.col, msg)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream, validating literal/comment termination
/// and delimiter balance. Mirrors `syn::parse_file`'s signature shape.
pub fn parse_file(src: &str) -> Result<File> {
    let src = src.strip_prefix('\u{feff}').unwrap_or(src);
    let mut lx = Lexer::new(src);
    // Skip a shebang line if present.
    if src.starts_with("#!") && !src.starts_with("#![") {
        while let Some(b) = lx.peek() {
            if b == b'\n' {
                break;
            }
            lx.bump();
        }
    }
    let mut tokens = Vec::new();
    let mut delim_stack: Vec<(u8, u32, u32)> = Vec::new();
    while let Some(b) = lx.peek() {
        let (line, col) = (lx.line, lx.col);
        let start = lx.pos;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                lx.bump();
            }
            b'/' if lx.peek_at(1) == Some(b'/') => {
                while let Some(c) = lx.peek() {
                    if c == b'\n' {
                        break;
                    }
                    lx.bump();
                }
                tokens.push(Token {
                    kind: TokenKind::Comment,
                    text: lx.text_since(start),
                    line,
                    col,
                });
            }
            b'/' if lx.peek_at(1) == Some(b'*') => {
                lx.bump();
                lx.bump();
                let mut depth = 1u32;
                loop {
                    match (lx.peek(), lx.peek_at(1)) {
                        (Some(b'*'), Some(b'/')) => {
                            lx.bump();
                            lx.bump();
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        (Some(b'/'), Some(b'*')) => {
                            lx.bump();
                            lx.bump();
                            depth += 1;
                        }
                        (Some(_), _) => {
                            lx.bump();
                        }
                        (None, _) => {
                            return Err(Error::new(line, col, "unterminated block comment"));
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Comment,
                    text: lx.text_since(start),
                    line,
                    col,
                });
            }
            b'"' => {
                lex_string(&mut lx)?;
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: lx.text_since(start),
                    line,
                    col,
                });
            }
            b'r' | b'b' if starts_prefixed_literal(&lx) => {
                lex_prefixed_literal(&mut lx)?;
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: lx.text_since(start),
                    line,
                    col,
                });
            }
            b'\'' => {
                let kind = lex_quote(&mut lx)?;
                tokens.push(Token {
                    kind,
                    text: lx.text_since(start),
                    line,
                    col,
                });
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut lx);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: lx.text_since(start),
                    line,
                    col,
                });
            }
            _ if is_ident_start(b) => {
                while let Some(c) = lx.peek() {
                    if is_ident_continue(c) {
                        lx.bump();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: lx.text_since(start),
                    line,
                    col,
                });
            }
            b'(' | b'[' | b'{' => {
                lx.bump();
                delim_stack.push((b, line, col));
                tokens.push(Token {
                    kind: TokenKind::OpenDelim,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
            b')' | b']' | b'}' => {
                lx.bump();
                let expected = match delim_stack.pop() {
                    Some((b'(', ..)) => b')',
                    Some((b'[', ..)) => b']',
                    Some((b'{', ..)) => b'}',
                    Some(_) => unreachable!("only delimiters are pushed"),
                    None => return Err(Error::new(line, col, "unmatched closing delimiter")),
                };
                if b != expected {
                    return Err(Error::new(line, col, "mismatched closing delimiter"));
                }
                tokens.push(Token {
                    kind: TokenKind::CloseDelim,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
            _ => {
                lx.bump();
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    if let Some((_, line, col)) = delim_stack.pop() {
        return Err(Error::new(line, col, "unclosed delimiter"));
    }
    Ok(File { tokens })
}

/// Whether the lexer sits on an `r"…"`, `r#"…"#`, `b"…"`, `br"…"`, `b'…'`
/// style prefixed literal (as opposed to an identifier starting with r/b).
fn starts_prefixed_literal(lx: &Lexer<'_>) -> bool {
    let b0 = lx.peek();
    let b1 = lx.peek_at(1);
    match (b0, b1) {
        (Some(b'r'), Some(b'"' | b'#')) => {
            // r"…" or r#…; `r#ident` (raw identifier) must be excluded:
            // raw strings are r"…" or r#…#"…" — after the hashes comes a
            // quote, after a raw-ident hash comes an ident char.
            if b1 == Some(b'"') {
                return true;
            }
            let mut off = 1;
            while lx.peek_at(off) == Some(b'#') {
                off += 1;
            }
            lx.peek_at(off) == Some(b'"')
        }
        (Some(b'b'), Some(b'"' | b'\'')) => true,
        (Some(b'b'), Some(b'r')) => matches!(lx.peek_at(2), Some(b'"' | b'#')),
        _ => false,
    }
}

fn lex_string(lx: &mut Lexer<'_>) -> Result<()> {
    let (line, col) = (lx.line, lx.col);
    lx.bump(); // opening quote
    loop {
        match lx.peek() {
            Some(b'"') => {
                lx.bump();
                return Ok(());
            }
            Some(b'\\') => {
                lx.bump();
                lx.bump();
            }
            Some(_) => {
                lx.bump();
            }
            None => return Err(Error::new(line, col, "unterminated string literal")),
        }
    }
}

fn lex_raw_string(lx: &mut Lexer<'_>) -> Result<()> {
    let (line, col) = (lx.line, lx.col);
    lx.bump(); // the `r`
    let mut hashes = 0usize;
    while lx.peek() == Some(b'#') {
        hashes += 1;
        lx.bump();
    }
    if lx.peek() != Some(b'"') {
        return Err(lx.error("expected `\"` in raw string literal"));
    }
    lx.bump();
    'scan: loop {
        match lx.bump() {
            Some(b'"') => {
                for off in 0..hashes {
                    if lx.peek_at(off) != Some(b'#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    lx.bump();
                }
                return Ok(());
            }
            Some(_) => {}
            None => return Err(Error::new(line, col, "unterminated raw string literal")),
        }
    }
}

fn lex_prefixed_literal(lx: &mut Lexer<'_>) -> Result<()> {
    match lx.peek() {
        Some(b'r') => lex_raw_string(lx),
        Some(b'b') => {
            match lx.peek_at(1) {
                Some(b'r') => {
                    lx.bump(); // the `b`; lex_raw_string eats the `r`
                    lex_raw_string(lx)
                }
                Some(b'"') => {
                    lx.bump();
                    lex_string(lx)
                }
                Some(b'\'') => {
                    lx.bump(); // the `b`
                    lx.bump(); // opening quote
                    if lx.peek() == Some(b'\\') {
                        lx.bump();
                    }
                    lx.bump(); // the char
                    if lx.peek() != Some(b'\'') {
                        return Err(lx.error("unterminated byte literal"));
                    }
                    lx.bump();
                    Ok(())
                }
                _ => unreachable!("guarded by starts_prefixed_literal"),
            }
        }
        _ => unreachable!("guarded by starts_prefixed_literal"),
    }
}

/// Disambiguates `'a` (lifetime) from `'a'`/`'\n'` (char literal).
fn lex_quote(lx: &mut Lexer<'_>) -> Result<TokenKind> {
    lx.bump(); // opening quote
    match lx.peek() {
        Some(b'\\') => {
            // Escaped char literal: '\n', '\u{1F600}', '\\', …
            lx.bump();
            loop {
                match lx.bump() {
                    Some(b'\'') => return Ok(TokenKind::Literal),
                    Some(_) => {}
                    None => return Err(lx.error("unterminated character literal")),
                }
            }
        }
        Some(c) if is_ident_start(c) => {
            // Could be 'a' (char) or 'abc (lifetime): consume ident chars,
            // then decide by whether a closing quote follows.
            while let Some(c2) = lx.peek() {
                if is_ident_continue(c2) {
                    lx.bump();
                } else {
                    break;
                }
            }
            if lx.peek() == Some(b'\'') {
                lx.bump();
                Ok(TokenKind::Literal)
            } else {
                Ok(TokenKind::Lifetime)
            }
        }
        Some(_) => {
            // Single non-ident char: '+', ' ', '('.
            lx.bump();
            if lx.peek() == Some(b'\'') {
                lx.bump();
                Ok(TokenKind::Literal)
            } else {
                // `'` used oddly (macro-land); treat as punct-ish lifetime.
                Ok(TokenKind::Lifetime)
            }
        }
        None => Err(lx.error("unterminated character literal")),
    }
}

fn lex_number(lx: &mut Lexer<'_>) {
    // Integers, floats, and suffixes: consume ident chars, dots followed by
    // a digit (so `1.0` is one token but `x.0.iter()` tuple indexing and
    // `1..n` ranges split), and exponent signs.
    lx.bump();
    loop {
        match (lx.peek(), lx.peek_at(1)) {
            (Some(b'.'), Some(c)) if c.is_ascii_digit() => {
                lx.bump();
            }
            (Some(b'+' | b'-'), _) => {
                // Only inside an exponent: previous byte must be e/E.
                let prev = lx.src[lx.pos - 1];
                if prev == b'e' || prev == b'E' {
                    lx.bump();
                } else {
                    break;
                }
            }
            (Some(c), _) if is_ident_continue(c) => {
                lx.bump();
            }
            _ => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        parse_file(src)
            .unwrap()
            .tokens()
            .iter()
            .map(|t| (t.kind, t.text.clone()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.unwrap();");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Ident, "a".into()),
                (TokenKind::Punct, ".".into()),
                (TokenKind::Ident, "unwrap".into()),
                (TokenKind::OpenDelim, "(".into()),
                (TokenKind::CloseDelim, ")".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn spans_are_one_based() {
        let f = parse_file("a\n  b").unwrap();
        assert_eq!((f.tokens()[0].line, f.tokens()[0].col), (1, 1));
        assert_eq!((f.tokens()[1].line, f.tokens()[1].col), (2, 3));
    }

    #[test]
    fn strings_hide_contents() {
        // `unwrap` inside a string must not surface as an ident token.
        let toks = kinds(r#"let s = "x.unwrap()";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || (t != "unwrap" && t != "x")));
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r###"let s = r#"say "hi".unwrap()"#;"###);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            1
        );
        // Raw identifiers are idents, not literals.
        let toks = kinds("let r#type = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r"));
    }

    #[test]
    fn char_versus_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'q'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Literal && t.starts_with('\''))
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn comments_are_tokens() {
        let toks = kinds("x // lint: allow(panic) — test\n/* block */ y");
        let comments: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Comment)
            .collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].1.contains("allow(panic)"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].1, "x");
    }

    #[test]
    fn floats_do_not_eat_ranges() {
        let toks = kinds("for i in 0..10 { let f = 1.5e-3; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == "1.5e-3"));
    }

    #[test]
    fn unbalanced_delimiters_error() {
        assert!(parse_file("fn f() {").is_err());
        assert!(parse_file("fn f() )").is_err());
        assert!(parse_file("fn f(] {}").is_err());
    }

    #[test]
    fn unterminated_literals_error() {
        assert!(parse_file("let s = \"oops").is_err());
        assert!(parse_file("/* oops").is_err());
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r#"let b = b"bytes"; let c = b'x'; let e = b'\n';"#);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            3
        );
    }
}

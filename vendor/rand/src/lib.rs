//! Vendored, self-contained subset of the `rand` 0.8 API.
//!
//! This workspace builds in offline environments where crates.io is not
//! reachable, so the external `rand` crate is replaced by this minimal
//! implementation of exactly the surface the workspace uses:
//!
//! - [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`]
//!   (xoshiro256++ with a SplitMix64 seed expander — deterministic and
//!   portable, which is all the simulator requires);
//! - [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive integer
//!   ranges, half-open float ranges), [`Rng::gen_bool`];
//! - [`seq::SliceRandom::choose`] and [`seq::SliceRandom::shuffle`].
//!
//! Streams are *not* bit-compatible with upstream `rand`; every consumer in
//! this workspace only requires determinism for a fixed seed, which this
//! implementation guarantees (no OS entropy anywhere).

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. The same seed always
    /// produces the same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits
/// (the subset of upstream's `Standard` distribution we need).
pub trait UniformSample: Sized {
    /// Draws one value from `rng`.
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for u64 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl UniformSample for bool {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Range types a value can be drawn from (the subset of upstream's
/// `SampleRange` we need).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a `u64` uniformly from `[0, bound)` by rejection sampling (no
/// modulo bias).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::uniform_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::uniform_sample(rng) as f32;
        self.start + u * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its natural uniform distribution
    /// (`f64` in `[0, 1)`, integers over their whole domain, fair `bool`).
    fn gen<T: UniformSample>(&mut self) -> T {
        T::uniform_sample(self)
    }

    /// Draws uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::uniform_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG (xoshiro256++).
    ///
    /// Matches upstream `SmallRng`'s role: not cryptographic, cheap to
    /// construct, fully reproducible from a `u64` seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expander, as upstream uses for seed_from_u64.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_covers_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}

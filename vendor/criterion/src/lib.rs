//! Vendored, self-contained subset of the `criterion` API.
//!
//! This workspace builds offline, so the external `criterion` crate is
//! replaced by this minimal harness covering the surface our benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Under `cargo bench` it runs each closure a calibrated number of times
//! and prints mean wall-clock time per iteration — useful for relative
//! comparisons, with none of upstream's statistics. Under `cargo test`
//! the bench targets merely compile and register no tests, keeping the
//! tier-1 gate (`cargo test -q`) fast.

#![warn(missing_docs)]
// Vendored stand-in for criterion: wall-clock timing is its whole job.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times a closure inside one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up / calibration: time a single call to pick an iteration
        // count that keeps each bench fast but non-trivial.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn report(id: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{id:<48} (not measured)");
        return;
    }
    let per = b.elapsed.as_secs_f64() / b.iters as f64;
    let (value, unit) = if per < 1e-6 {
        (per * 1e9, "ns")
    } else if per < 1e-3 {
        (per * 1e6, "µs")
    } else if per < 1.0 {
        (per * 1e3, "ms")
    } else {
        (per, "s")
    };
    println!("{id:<48} {value:>10.3} {unit}/iter  ({} iters)", b.iters);
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(id, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Upstream-compatible sample-size hint (unused by this harness).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Upstream-compatible measurement-time hint (unused by this harness).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles bench functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group when invoked via `cargo bench`.
///
/// The default libtest bench harness provides its own `main`, so this
/// expands to a plainly-named runner function plus a `main` that is used
/// only when the target is built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        #[allow(dead_code)]
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion;
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion;
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let input = 21u64;
        group.bench_with_input(BenchmarkId::from_parameter(input), &input, |b, &i| {
            b.iter(|| black_box(i * 2))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}

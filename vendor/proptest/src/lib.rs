//! Vendored, self-contained subset of the `proptest` API.
//!
//! This workspace builds offline, so the external `proptest` crate is
//! replaced by this minimal property-testing engine covering exactly the
//! surface the workspace's tests use: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`, [`strategy::Strategy`] with
//! `prop_map`/`prop_recursive`/`boxed`, [`prop_oneof!`], `Just`, `any`,
//! numeric-range strategies, a character-class string-regex subset,
//! tuple/vec/btree_set combinators, and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: cases are generated from a fixed per-test
//! seed (derived from the test's name, no OS entropy — every run replays
//! the identical case sequence), and failing cases are reported but *not*
//! shrunk. For this repository's invariant-style properties that trade-off
//! buys full determinism, which the simulator work requires.

#![warn(missing_docs)]
// Third-party API surface by construction: upstream proptest's BoxedStrategy
// is Rc-based, and this stand-in only runs inside tests.
#![allow(clippy::disallowed_types)]

pub mod test_runner {
    //! Runner configuration and failure type.

    use core::fmt;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (carried by `prop_assert!`-style macros).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail<S: Into<String>>(message: S) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Result type of a property body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic generator driving all strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e3779b97f4a7c15,
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX % bound) - 1;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a hash of a test's name: the per-test seed.
    pub fn seed_of(name: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` generates leaves, and
        /// `recurse` lifts a strategy for subtrees into one for branches,
        /// applied up to `depth` levels. The `_desired_size` and
        /// `_expected_branch_size` hints are accepted for upstream API
        /// compatibility but unused here.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut cur = base.clone();
            for _ in 0..depth {
                let branch = recurse(cur).boxed();
                cur = Union::new(vec![base.clone(), branch]).boxed();
            }
            cur
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    /// Character-class regex subset for `&str` strategies: a sequence of
    /// `[class]{m}`, `[class]{m,n}`, or literal characters, where a class
    /// holds literal characters and `a-z` ranges.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let (alphabet, next) = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                (parse_class(&chars[i + 1..close]), close + 1)
            } else {
                (vec![chars[i]], i + 1)
            };
            let (reps, next) = parse_reps(&chars, next, pattern);
            assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");
            for _ in 0..reps.sample(rng) {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
            i = next;
        }
        out
    }

    fn parse_class(body: &[char]) -> Vec<char> {
        let mut alphabet = Vec::new();
        let mut j = 0;
        while j < body.len() {
            if j + 2 < body.len() && body[j + 1] == '-' {
                let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                assert!(lo <= hi, "inverted class range");
                alphabet.extend((lo..=hi).filter_map(char::from_u32));
                j += 3;
            } else {
                alphabet.push(body[j]);
                j += 1;
            }
        }
        alphabet
    }

    struct Reps {
        min: u64,
        max: u64,
    }

    impl Reps {
        fn sample(&self, rng: &mut TestRng) -> u64 {
            self.min + rng.below(self.max - self.min + 1)
        }
    }

    fn parse_reps(chars: &[char], at: usize, pattern: &str) -> (Reps, usize) {
        if at >= chars.len() || chars[at] != '{' {
            return (Reps { min: 1, max: 1 }, at);
        }
        let close = chars[at..]
            .iter()
            .position(|&c| c == '}')
            .map(|p| at + p)
            .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"));
        let body: String = chars[at + 1..close].iter().collect();
        let (min, max) = match body.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("repetition min"),
                hi.trim().parse().expect("repetition max"),
            ),
            None => {
                let n = body.trim().parse().expect("repetition count");
                (n, n)
            }
        };
        assert!(min <= max, "inverted repetition in pattern {pattern:?}");
        (Reps { min, max }, close + 1)
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Collection strategies (`prop::collection`).
    pub mod collection {
        use super::{Strategy, TestRng};
        use core::ops::Range;
        use std::collections::BTreeSet;

        /// Accepted collection-size specifications: an exact length or a
        /// half-open range of lengths.
        #[derive(Debug, Clone)]
        pub struct SizeRange(Range<usize>);

        impl From<usize> for SizeRange {
            fn from(exact: usize) -> SizeRange {
                SizeRange(exact..exact + 1)
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(range: Range<usize>) -> SizeRange {
                assert!(range.start < range.end, "empty collection size range");
                SizeRange(range)
            }
        }

        impl SizeRange {
            fn sample(&self, rng: &mut TestRng) -> usize {
                let span = (self.0.end - self.0.start) as u64;
                self.0.start + rng.below(span) as usize
            }
        }

        /// Generates `Vec`s whose length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Generates `BTreeSet`s targeting a size drawn from `size`
        /// (best-effort when the element domain is small).
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.sample(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// See [`btree_set`].
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let target = self.size.sample(rng);
                let mut out = BTreeSet::new();
                // Small element domains may not admit `target` distinct
                // values; bail out after a bounded number of attempts.
                let mut budget = target * 16 + 16;
                while out.len() < target && budget > 0 {
                    out.insert(self.element.generate(rng));
                    budget -= 1;
                }
                out
            }
        }
    }

    pub use collection::{BTreeSetStrategy, VecStrategy};

    /// Strategy behind [`crate::arbitrary::any`].
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
        generate: fn(&mut TestRng) -> T,
    }

    impl<T> Any<T> {
        pub(crate) fn new(generate: fn(&mut TestRng) -> T) -> Any<T> {
            Any {
                _marker: core::marker::PhantomData,
                generate,
            }
        }
    }

    impl<T> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.generate)(rng)
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Returns the canonical strategy for `Self`.
        fn arbitrary() -> Any<Self>;
    }

    macro_rules! arbitrary_impl {
        ($($t:ty => $f:expr),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> Any<$t> {
                    Any::new($f)
                }
            }
        )*};
    }

    arbitrary_impl! {
        bool => |rng: &mut TestRng| rng.next_u64() & 1 == 1,
        u8 => |rng: &mut TestRng| rng.next_u64() as u8,
        u16 => |rng: &mut TestRng| rng.next_u64() as u16,
        u32 => |rng: &mut TestRng| rng.next_u64() as u32,
        u64 => |rng: &mut TestRng| rng.next_u64(),
        usize => |rng: &mut TestRng| rng.next_u64() as usize,
        i32 => |rng: &mut TestRng| rng.next_u64() as i32,
        i64 => |rng: &mut TestRng| rng.next_u64() as i64,
        f64 => |rng: &mut TestRng| rng.unit_f64(),
    }

    /// The canonical strategy for `T` (upstream `any::<T>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        T::arbitrary()
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module-style access mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::strategy::collection;
    }
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

/// Fails the current property case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// Uniform choice among strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::new(
                $crate::test_runner::seed_of(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..config.cases {
                $(let $pat = ($strategy).generate(&mut rng);)+
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_shapes() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::new(1);
        for _ in 0..200 {
            let s = "[a-c]{1,2}".generate(&mut rng);
            assert!((1..=2).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
            let t = "[a-z0-9_.-]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&t.len()), "{t:?}");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::{seed_of, TestRng};
        let strat = prop::collection::vec(0u64..100, 1..8);
        let mut a = TestRng::new(seed_of("x"));
        let mut b = TestRng::new(seed_of("x"));
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline itself: ranges stay in bounds.
        #[test]
        fn macro_smoke(x in 3u64..9, v in prop::collection::vec(0usize..5, 1..4), flip in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 5));
            let _ = flip;
            if x == 0 {
                return Ok(());
            }
        }

        /// Union + map + recursion combinators generate without panicking.
        #[test]
        fn combinators_smoke(depth in 0usize..3) {
            let strat = prop_oneof![Just(1u32), Just(2u32), 3u32..10]
                .prop_map(|v| v * 2)
                .boxed();
            let mut rng = crate::test_runner::TestRng::new(depth as u64);
            use crate::strategy::Strategy;
            let v = strat.generate(&mut rng);
            prop_assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }
}

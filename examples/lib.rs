//! The examples are standalone binaries; see the sibling `*.rs` files:
//! `quickstart`, `disaster_response`, `smart_building`, `fig1_walkthrough`,
//! `city_scale`, `mission_workflow`.

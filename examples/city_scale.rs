//! Runs the full §VII evaluation scenario once — 8×8 Manhattan grid,
//! 30 Athena nodes, 90 concurrent route-finding queries — and prints the
//! complete run report for a chosen strategy.
//!
//! Run with: `cargo run -p dde-examples --bin city_scale --release [strategy]`
//! where `strategy` is one of `cmp`, `slt`, `lcf`, `lvf`, `lvfl`
//! (default `lvfl`).

// CLI strategy selection reads argv; the run itself uses a fixed seed.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use dde_core::prelude::*;
use dde_workload::prelude::*;

fn main() {
    // lint: allow(nondeterminism) — CLI strategy selection only; the run itself uses a fixed seed
    let strategy: Strategy = std::env::args()
        .nth(1)
        .as_deref()
        .unwrap_or("lvfl")
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("{e}; expected one of cmp/slt/lcf/lvf/lvfl");
            std::process::exit(2);
        });

    let config = ScenarioConfig::default().with_seed(11).with_fast_ratio(0.4);
    eprintln!(
        "building scenario: {}x{} grid, {} nodes, {} queries, 40% fast-changing objects…",
        config.grid_rows,
        config.grid_cols,
        config.node_count,
        config.node_count * config.queries_per_node
    );
    let scenario = Scenario::build(config);
    eprintln!(
        "catalog: {} objects over {} labels",
        scenario.catalog.len(),
        scenario.catalog.covered_labels().count()
    );

    let report = run_scenario(&scenario, RunOptions::new(strategy));

    println!("strategy              : {}", report.strategy);
    println!("queries               : {}", report.total_queries);
    println!(
        "resolved by deadline  : {} ({:.1}%)",
        report.resolved,
        report.resolution_ratio() * 100.0
    );
    println!("  viable route found  : {}", report.viable);
    println!("  no route viable     : {}", report.infeasible);
    println!("  deadline missed     : {}", report.missed);
    println!("decision accuracy     : {:.1}%", report.accuracy() * 100.0);
    println!("total bandwidth       : {:.1} MB", report.total_megabytes());
    for (kind, bytes) in &report.bytes_by_kind {
        println!("  {kind:<9}           : {:.2} MB", *bytes as f64 / 1e6);
    }
    println!(
        "mean decision latency : {}",
        report
            .mean_resolution_latency
            .map(|d| format!("{:.1} s", d.as_secs_f64()))
            .unwrap_or_else(|| "—".into())
    );
    println!("cache hits            : {}", report.cache_hits);
    println!("label hits            : {}", report.label_hits);
    println!("local samples         : {}", report.local_samples);
    println!("simulator events      : {}", report.events);
}

//! Runs the city-scale evaluation scenario — 12×12 Manhattan grid, 60
//! Athena nodes, 120 route-finding queries — as a thread sweep over the
//! sharded parallel simulator, printing an events/sec figure per thread
//! count and the full run report for a chosen strategy.
//!
//! Run with:
//! `cargo run -p dde-examples --bin city_scale --release [strategy] [threads...]`
//! where `strategy` is one of `cmp`, `slt`, `lcf`, `lvf`, `lvfl`
//! (default `lvfl`) and `threads...` is the sweep (default `1 2 4`).
//! Reports must be identical at every thread count; the sweep checks this.

// CLI argument parsing and wall-clock throughput measurement read the
// environment; the simulated runs themselves use a fixed seed.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]
use dde_core::prelude::*;
use dde_workload::prelude::*;
use std::time::Instant;

fn main() {
    // lint: allow(nondeterminism) — CLI selection only; the run itself uses a fixed seed
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strategy: Strategy = args
        .first()
        .map(String::as_str)
        .unwrap_or("lvfl")
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("{e}; expected one of cmp/slt/lcf/lvf/lvfl");
            std::process::exit(2);
        });
    let threads: Vec<usize> = if args.len() > 1 {
        args[1..]
            .iter()
            .map(|a| a.parse().expect("thread counts must be integers"))
            .collect()
    } else {
        vec![1, 2, 4]
    };

    let config = ScenarioConfig::city().with_seed(11).with_fast_ratio(0.4);
    eprintln!(
        "building scenario: {}x{} grid, {} nodes, {} queries, 40% fast-changing objects…",
        config.grid_rows,
        config.grid_cols,
        config.node_count,
        config.node_count * config.queries_per_node
    );
    let scenario = Scenario::build(config);
    eprintln!(
        "catalog: {} objects over {} labels",
        scenario.catalog.len(),
        scenario.catalog.covered_labels().count()
    );

    // --- Thread sweep ---------------------------------------------------
    let mut baseline: Option<RunReport> = None;
    let mut report = None;
    println!(
        "{:>7}  {:>12}  {:>12}  {:>8}",
        "threads", "events", "wall s", "ev/s"
    );
    for &t in &threads {
        // lint: allow(nondeterminism) — wall-clock throughput only; simulated time is seeded
        let started = Instant::now();
        let r = run_scenario_sharded(&scenario, RunOptions::new(strategy), t);
        let wall = started.elapsed().as_secs_f64();
        println!(
            "{t:>7}  {:>12}  {wall:>12.3}  {:>8.0}",
            r.events,
            r.events as f64 / wall.max(1e-9)
        );
        if let Some(base) = &baseline {
            assert_eq!(
                (base.events, base.resolved, base.total_bytes, base.viable),
                (r.events, r.resolved, r.total_bytes, r.viable),
                "sharded run diverged at {t} threads"
            );
        } else {
            baseline = Some(r.clone());
        }
        report = Some(r);
    }
    let report = report.expect("at least one thread count");

    println!();
    println!("strategy              : {}", report.strategy);
    println!("queries               : {}", report.total_queries);
    println!(
        "resolved by deadline  : {} ({:.1}%)",
        report.resolved,
        report.resolution_ratio() * 100.0
    );
    println!("  viable route found  : {}", report.viable);
    println!("  no route viable     : {}", report.infeasible);
    println!("  deadline missed     : {}", report.missed);
    println!("decision accuracy     : {:.1}%", report.accuracy() * 100.0);
    println!("total bandwidth       : {:.1} MB", report.total_megabytes());
    for (kind, bytes) in &report.bytes_by_kind {
        println!("  {kind:<9}           : {:.2} MB", *bytes as f64 / 1e6);
    }
    println!(
        "mean decision latency : {}",
        report
            .mean_resolution_latency
            .map(|d| format!("{:.1} s", d.as_secs_f64()))
            .unwrap_or_else(|| "—".into())
    );
    println!("cache hits            : {}", report.cache_hits);
    println!("label hits            : {}", report.label_hits);
    println!("local samples         : {}", report.local_samples);
    println!("simulator events      : {}", report.events);
}

//! Event-triggered decision making (§IV-B) in a smart building.
//!
//! "The firing of a motion sensor inside a warehouse after hours may
//! trigger a decision task to determine the identity of the intruder."
//! This example models a small building network: a motion event triggers a
//! security decision whose logic combines threshold-predicated continuous
//! sensors (the `Dim` example of §II-B) with camera evidence:
//!
//! ```text
//! dispatch_guard = (motion & door_open & !badge_ok)          // break-in
//!                | (motion & window_broken)                   // forced entry
//! ```
//!
//! Run with: `cargo run -p dde-examples --bin smart_building`

use dde_core::prelude::*;
use dde_logic::label::Label;
use dde_logic::parse::parse_expr;
use dde_logic::time::{SimDuration, SimTime};
use dde_netsim::topology::{LinkSpec, NodeId, Topology};
use dde_workload::catalog::{Catalog, ObjectSpec};
use dde_workload::grid::RoadGrid;
use dde_workload::scenario::{QueryInstance, Scenario, ScenarioConfig};
use dde_workload::world::{DynamicsClass, WorldModel};

fn build(trigger_at: SimTime) -> Scenario {
    let mut config = ScenarioConfig::small();
    config.deadline = SimDuration::from_secs(30);
    config.prob_viable = 0.5;

    // Security desk (0) — corridor gateway (1) — warehouse wing (2, 3).
    let mut topology = Topology::new(4);
    let fast_link = LinkSpec::with_bandwidth(10_000_000); // building LAN
    topology.add_link(NodeId(0), NodeId(1), fast_link);
    topology.add_link(NodeId(1), NodeId(2), fast_link);
    topology.add_link(NodeId(1), NodeId(3), fast_link);
    topology.rebuild_routes();

    // Ground truth at trigger time: motion + open door + no badge swipe —
    // a break-in through the door, window intact.
    let mut world = WorldModel::new(31);
    for (label, validity_s, p) in [
        ("motion", 20, 1.0), // fast-decaying occupancy state
        ("door_open", 60, 1.0),
        ("badge_ok", 300, 0.0), // nobody badged in
        ("window_broken", 600, 0.0),
    ] {
        world.register(
            Label::new(label),
            if validity_s < 60 {
                DynamicsClass::Fast
            } else {
                DynamicsClass::Slow
            },
            SimDuration::from_secs(validity_s),
            p,
        );
    }

    // Evidence sources around the building.
    let mut catalog = Catalog::new();
    for (name, covers, node, bytes, validity_s) in [
        (
            "/bldg/warehouse/pir",
            vec!["motion"],
            2usize,
            2_000u64,
            20u64,
        ),
        ("/bldg/warehouse/doorcam", vec!["door_open"], 2, 400_000, 60),
        ("/bldg/lobby/badge-log", vec!["badge_ok"], 0, 5_000, 300),
        (
            "/bldg/warehouse/windowcam",
            vec!["window_broken"],
            3,
            600_000,
            600,
        ),
    ] {
        let class = if validity_s < 60 {
            DynamicsClass::Fast
        } else {
            DynamicsClass::Slow
        };
        catalog.add(ObjectSpec {
            name: name.parse().expect("valid"),
            covers: covers.into_iter().map(Label::new).collect(),
            size: bytes,
            source: NodeId(node),
            class,
            validity: SimDuration::from_secs(validity_s),
        });
    }

    // The decision triggered by the motion event, from §IV-B. Negated
    // literals exercise the general expression pipeline.
    let expr = parse_expr("(motion & door_open & !badge_ok) | (motion & window_broken)")
        .expect("valid expression")
        .to_dnf(16)
        .expect("small expression");

    let queries = vec![QueryInstance {
        id: 0,
        origin: NodeId(0),
        expr,
        deadline: config.deadline,
        issue_at: trigger_at,
    }];

    Scenario {
        grid: RoadGrid::new(2, 2), // unused placeholder geometry
        node_sites: Vec::new(),
        config,
        topology,
        world,
        catalog,
        queries,
        faults: dde_netsim::fault::FaultSchedule::new(),
    }
}

fn main() {
    println!(
        "== Smart building: motion sensor fires at 02:13, decide whether to dispatch a guard ==\n"
    );
    let trigger_at = SimTime::from_secs(8);
    let scenario = build(trigger_at);
    let report = run_scenario(&scenario, RunOptions::new(Strategy::Lvf));

    println!("decision logic : (motion & door_open & !badge_ok) | (motion & window_broken)");
    println!("triggered at   : {trigger_at}");
    match (report.viable, report.infeasible, report.missed) {
        (v, _, _) if v > 0 => println!("outcome        : DISPATCH — break-in conditions confirmed"),
        (_, i, _) if i > 0 => println!("outcome        : stand down — no alarm condition holds"),
        _ => println!("outcome        : deadline missed"),
    }
    println!(
        "evidence moved : {:.1} KB over the building LAN",
        report.total_bytes as f64 / 1e3
    );
    println!(
        "decision delay : {}",
        report
            .mean_resolution_latency
            .map(|d| format!("{:.2} s", d.as_secs_f64()))
            .unwrap_or_else(|| "—".into())
    );
    println!(
        "\nNote how the badge log (5 KB) is fetched before the 400 KB door\n\
         camera clip: inside an AND, the cheap condition with the best\n\
         short-circuit ratio goes first (§III-A) — if someone DID badge in,\n\
         no video needs to move at all."
    );
}

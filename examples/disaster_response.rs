//! The paper's running example, end to end: after an earthquake, a medical
//! team must move a patient and needs one viable route — A-B-C or D-E-F.
//! Roadside cameras supply pictures; Athena retrieves only what the
//! decision needs.
//!
//! The example hand-builds a small scenario (no random generation) so the
//! output is a readable narrative, then runs every retrieval strategy on it
//! and compares cost.
//!
//! Run with: `cargo run -p dde-examples --bin disaster_response`

use dde_core::prelude::*;
use dde_logic::dnf::{Dnf, Term};
use dde_logic::label::Label;
use dde_logic::time::{SimDuration, SimTime};
use dde_netsim::topology::{LinkSpec, NodeId, Topology};
use dde_workload::catalog::{Catalog, ObjectSpec};
use dde_workload::grid::RoadGrid;
use dde_workload::scenario::{QueryInstance, Scenario, ScenarioConfig};
use dde_workload::world::{DynamicsClass, WorldModel};

/// Hand-builds the disaster scenario: 5 Athena nodes in a line; the medic
/// team at node 0; cameras over segments A..F hosted at nodes 1..4.
fn build() -> Scenario {
    let mut config = ScenarioConfig::small();
    config.seed = 2024;
    config.deadline = SimDuration::from_secs(90);
    config.prob_viable = 0.5;

    let topology = Topology::line(5, LinkSpec::mbps1());

    // World: route 1 (A, B, C) has a collapsed segment B; route 2 is clear.
    // prob_true per label drives the deterministic ground truth; 1.0/0.0
    // make the narrative reproducible.
    let mut world = WorldModel::new(9);
    let slow = SimDuration::from_secs(600);
    for (seg, up) in [
        ("A", true),
        ("B", false), // collapsed overpass
        ("C", true),
        ("D", true),
        ("E", true),
        ("F", true),
    ] {
        world.register(
            Label::new(format!("viable{seg}")),
            DynamicsClass::Slow,
            slow,
            if up { 1.0 } else { 0.0 },
        );
    }

    // Cameras: one per segment, spread over nodes 1..=4; sizes chosen so
    // that route 2's evidence is slightly cheaper.
    let mut catalog = Catalog::new();
    for (seg, node, kb) in [
        ("A", 1, 500),
        ("B", 2, 800),
        ("C", 3, 400),
        ("D", 2, 300),
        ("E", 3, 350),
        ("F", 4, 300),
    ] {
        catalog.add(ObjectSpec {
            name: format!("/city/cam/n{node}/seg{seg}")
                .parse()
                .expect("valid"),
            covers: vec![Label::new(format!("viable{seg}"))],
            size: kb * 1000,
            source: NodeId(node),
            class: DynamicsClass::Slow,
            validity: slow,
        });
    }

    let expr = Dnf::from_terms(vec![
        Term::all_of(["viableA", "viableB", "viableC"]),
        Term::all_of(["viableD", "viableE", "viableF"]),
    ]);
    let queries = vec![QueryInstance {
        id: 0,
        origin: NodeId(0),
        expr,
        deadline: config.deadline,
        issue_at: SimTime::ZERO,
    }];

    Scenario {
        grid: RoadGrid::new(2, 2), // unused placeholder geometry
        node_sites: Vec::new(),
        config,
        topology,
        world,
        catalog,
        queries,
        faults: dde_netsim::fault::FaultSchedule::new(),
    }
}

fn main() {
    println!("== Disaster response: find a viable evacuation route ==\n");
    println!("decision: (viableA & viableB & viableC) | (viableD & viableE & viableF)");
    println!("ground truth: segment B is collapsed; route D-E-F is clear\n");

    for strategy in Strategy::ALL {
        let scenario = build();
        let report = run_scenario(&scenario, RunOptions::new(strategy));
        let outcome = if report.viable > 0 {
            "found viable route"
        } else if report.infeasible > 0 {
            "no route viable"
        } else {
            "MISSED DEADLINE"
        };
        println!(
            "{:>4}: {:<18} data transferred {:>6.2} MB, decision in {}",
            strategy.code(),
            outcome,
            *report.bytes_by_kind.get("data").unwrap_or(&0) as f64 / 1e6,
            report
                .mean_resolution_latency
                .map(|d| format!("{:.1} s", d.as_secs_f64()))
                .unwrap_or_else(|| "—".into()),
        );
    }

    println!(
        "\nThe decision-driven schemes (lvf, lvfl) explore the cheaper, more\n\
         promising route first and stop as soon as it is confirmed — the\n\
         baselines pay for pictures of route 1 that a short-circuit makes\n\
         irrelevant."
    );

    // -- Act two: the same decision under infrastructure failure. ---------
    // The earthquake aftershock takes down node 4 (the only camera for
    // segment F) shortly into the mission; it comes back before the
    // deadline. The retrieval loop rides out the outage: with no route to
    // the only provider it keeps re-planning each tick, fires the fetch the
    // moment the node recovers, and completes well inside the deadline.
    println!("\n== Aftershock: the segment-F camera host crashes mid-run ==\n");
    let scenario = build();
    let mut options = RunOptions::new(Strategy::Lvf);
    options.faults.crash_at(SimTime::from_secs(2), NodeId(4));
    options.faults.recover_at(SimTime::from_secs(40), NodeId(4));
    let report = run_scenario(&scenario, options);
    let outcome = if report.viable > 0 {
        "found viable route"
    } else if report.infeasible > 0 {
        "no route viable"
    } else {
        "MISSED DEADLINE"
    };
    println!(
        " lvf under faults: {outcome}; {} in-flight message(s) dropped by the\n\
         crash, decision in {}",
        report.messages_dropped_by_fault,
        report
            .mean_resolution_latency
            .map(|d| format!("{:.1} s", d.as_secs_f64()))
            .unwrap_or_else(|| "—".into()),
    );
    println!(
        "\nA crashed source delays the decision instead of killing it: while\n\
         no route to the only camera exists the fetch keeps re-planning, it\n\
         fires the moment the node recovers, and the decision still lands\n\
         well before the 90 s deadline."
    );
}

//! Workflow mining and predictive anticipation (§VIII).
//!
//! Teams follow doctrine: after *recon* comes *assess*; after *assess*,
//! usually *evacuate*, sometimes *resupply*. Because the flowchart is
//! stable, a Markov miner trained on past missions predicts the next
//! decision — and the network can announce it ahead of time, staging
//! evidence before the user even asks (prediction-driven prefetch).
//!
//! This example (1) trains [`WorkflowModel`] on sampled missions and
//! reports its accuracy, then (2) replays a mission on an Athena network
//! twice — without and with prediction-driven announcements — and compares
//! decision latency.
//!
//! Run with: `cargo run -p dde-examples --bin mission_workflow --release`

use dde_core::annotate::GroundTruthAnnotator;
use dde_core::node::{AthenaEvent, AthenaNode, NodeConfig, SharedWorld};
use dde_core::prelude::*;
use dde_core::query::QueryStatus;
use dde_logic::dnf::{Dnf, Term};
use dde_logic::time::{SimDuration, SimTime};
use dde_netsim::sim::Simulator;
use dde_workload::prelude::*;
use dde_workload::workflow::{DecisionTemplate, Doctrine};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Builds the doctrine over decision templates grounded in the scenario's
/// actual road segments, so each decision needs real evidence.
fn doctrine(scenario: &Scenario) -> Doctrine {
    let segs: Vec<String> = scenario
        .grid
        .segments()
        .iter()
        .map(|s| s.label().as_str().to_string())
        .collect();
    let route = |a: usize, b: usize, c: usize| {
        Dnf::from_terms(vec![
            Term::all_of([segs[a].clone(), segs[b].clone()]),
            Term::all_of([segs[c].clone()]),
        ])
    };
    let deadline = SimDuration::from_secs(120);
    Doctrine::new(
        vec![
            DecisionTemplate {
                name: "recon".into(),
                expr: route(0, 1, 2),
                deadline,
            },
            DecisionTemplate {
                name: "assess".into(),
                expr: route(3, 4, 5),
                deadline,
            },
            DecisionTemplate {
                name: "evacuate".into(),
                expr: route(6, 7, 8),
                deadline,
            },
            DecisionTemplate {
                name: "resupply".into(),
                expr: route(9, 10, 11),
                deadline,
            },
        ],
        vec![
            vec![0.0, 0.95, 0.0, 0.0],  // recon → assess
            vec![0.0, 0.0, 0.65, 0.30], // assess → evacuate | resupply
            vec![0.0, 0.0, 0.0, 0.0],   // evacuate ends the mission
            vec![0.0, 0.85, 0.0, 0.0],  // resupply → assess again
        ],
        0,
    )
}

/// Replays `missions` (one template sequence per node) on the Athena
/// network. With `predictor` set, each decision additionally announces the
/// *predicted* next decision as soon as it is issued.
fn replay(
    scenario: &Scenario,
    missions: &[Vec<usize>],
    doctrine: &Doctrine,
    predictor: Option<&WorkflowModel>,
) -> (usize, usize, f64, f64) {
    let spacing = SimDuration::from_secs(90); // time between decisions
    let mut config = NodeConfig::new(Strategy::LvfLabelShare);
    config.prefetch = Some(true);
    config.prob_true_prior = scenario.config.prob_viable;
    let shared = Arc::new(SharedWorld {
        catalog: scenario.catalog.clone(),
        world: scenario.world.clone(),
        config,
    });
    let nodes: Vec<AthenaNode> = (0..scenario.topology.len())
        .map(|_| AthenaNode::new(Arc::clone(&shared), Arc::new(GroundTruthAnnotator)))
        .collect();
    let mut sim = Simulator::new(scenario.topology.clone(), nodes, 17);

    let mut qid = 0u64;
    let mut horizon = SimTime::ZERO;
    for (ni, mission) in missions.iter().enumerate() {
        let origin = dde_netsim::NodeId(ni % scenario.topology.len());
        for (step, &tmpl) in mission.iter().enumerate() {
            let issue_at = SimTime::ZERO + spacing * step as u64;
            let t = &doctrine.templates()[tmpl];
            let inst = QueryInstance {
                id: qid,
                origin,
                expr: t.expr.clone(),
                deadline: t.deadline,
                issue_at,
            };
            qid += 1;
            // Prediction-driven anticipation: when the current decision is
            // issued, announce the predicted next one so sources can stage
            // its evidence during the think time.
            if let Some(model) = predictor {
                if let Some(predicted) = model.predict_next(tmpl) {
                    let pt = &doctrine.templates()[predicted];
                    let pred_inst = QueryInstance {
                        id: 1_000_000 + qid, // distinct announce id
                        origin,
                        expr: pt.expr.clone(),
                        deadline: pt.deadline,
                        issue_at: issue_at + spacing,
                    };
                    sim.schedule_external(issue_at, origin, AthenaEvent::AnnounceOnly(pred_inst));
                }
            }
            sim.schedule_external(issue_at, origin, AthenaEvent::Issue(inst));
            horizon = horizon.max(issue_at + t.deadline);
        }
    }
    sim.run_until(horizon + SimDuration::from_secs(5));

    let mut resolved = 0;
    let mut total = 0;
    let mut latency_sum = 0.0;
    let mut latency_n: f64 = 0.0;
    for node in sim.nodes() {
        for q in node.queries() {
            total += 1;
            if let QueryStatus::Decided { at, .. } = q.status {
                resolved += 1;
                latency_sum += at.saturating_since(q.issued_at).as_secs_f64();
                latency_n += 1.0;
            }
        }
    }
    let mb = sim.metrics().bytes_sent as f64 / 1e6;
    (resolved, total, latency_sum / latency_n.max(1.0), mb)
}

fn main() {
    println!("== Mission workflows: mine the doctrine, anticipate the next decision ==\n");
    let scenario = Scenario::build(ScenarioConfig::small().with_seed(77).with_fast_ratio(0.2));
    let doctrine = doctrine(&scenario);

    // --- 1. Mine past missions --------------------------------------
    let mut rng = SmallRng::seed_from_u64(42);
    let mut model = WorkflowModel::new(doctrine.templates().len());
    let train: Vec<Vec<usize>> = (0..300).map(|_| doctrine.sample(&mut rng, 8)).collect();
    for seq in &train {
        model.observe_sequence(seq);
    }
    let test: Vec<Vec<usize>> = (0..100).map(|_| doctrine.sample(&mut rng, 8)).collect();
    println!(
        "mined {} missions; top-1 next-decision accuracy on held-out missions: {:.0}%",
        train.len(),
        model.top1_accuracy(&test) * 100.0
    );
    for (i, t) in doctrine.templates().iter().enumerate() {
        let next = model
            .predict_next(i)
            .map(|j| doctrine.templates()[j].name.clone())
            .unwrap_or_else(|| "(mission ends)".into());
        println!("  after {:<9} expect {next}", t.name);
    }

    // --- 2. Replay live missions with and without anticipation -------
    let missions: Vec<Vec<usize>> = (0..scenario.topology.len())
        .map(|_| doctrine.sample(&mut rng, 6))
        .collect();
    let (r0, t0, lat0, mb0) = replay(&scenario, &missions, &doctrine, None);
    let (r1, t1, lat1, mb1) = replay(&scenario, &missions, &doctrine, Some(&model));

    println!("\nlive replay over {} nodes:", scenario.topology.len());
    println!(
        "  no anticipation        : {r0}/{t0} decided, mean latency {lat0:>5.1} s, {mb0:>6.1} MB"
    );
    println!(
        "  predicted announcements: {r1}/{t1} decided, mean latency {lat1:>5.1} s, {mb1:>6.1} MB"
    );
    println!(
        "\nAnnouncing the *predicted* next decision turns think time into\n\
         staging time (§VIII): sources push its evidence in the background,\n\
         so when the user actually asks, much of the answer is already\n\
         nearby. Wrong predictions only cost some background bandwidth."
    );
}

//! Quickstart: the decision-driven execution API in five minutes.
//!
//! 1. Author a decision query as a Boolean expression over labels.
//! 2. Attach retrieval metadata (cost, validity, truth prior) per condition.
//! 3. Plan retrieval: short-circuit ordering + validity feasibility.
//! 4. Evaluate incrementally as evidence arrives; watch pruning kick in.
//!
//! Run with: `cargo run -p dde-examples --bin quickstart`

use dde_logic::prelude::*;
use dde_sched::explain::explain_dnf_plan;
use dde_sched::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // -- 1. The paper's route-finding decision -------------------------
    // Two candidate routes after the earthquake: A-B-C or D-E-F.
    let expr = parse_expr("(viableA & viableB & viableC) | (viableD & viableE & viableF)")?;
    let query = expr.to_dnf(64)?;
    println!("decision query : {query}");
    println!("labels needed  : {}\n", query.labels().len());

    // -- 2. Per-condition metadata (§III-A) ----------------------------
    // Roadside pictures: size = retrieval cost, validity = how long the
    // road state stays trustworthy, prior = chance the segment is viable.
    let meta: MetaTable = [
        ("viableA", 400_000u64, 600u64, 0.9),
        ("viableB", 900_000, 30, 0.9), // volatile: flooding camera
        ("viableC", 300_000, 600, 0.9),
        ("viableD", 200_000, 600, 0.4), // likely blocked
        ("viableE", 500_000, 600, 0.4),
        ("viableF", 350_000, 600, 0.4),
    ]
    .into_iter()
    .map(|(l, bytes, validity_s, p)| {
        (
            Label::new(l),
            ConditionMeta::new(Cost::from_bytes(bytes), SimDuration::from_secs(validity_s))
                .with_prob(Probability::new(p).expect("valid prob")),
        )
    })
    .collect();

    // -- 3. Plan retrieval ---------------------------------------------
    // Term order: highest truth-probability per expected cost first.
    // Within a term: highest short-circuit ratio (1-p)/C first.
    let plan = plan_dnf(&query, &meta);
    println!("retrieval plan:\n{}", explain_dnf_plan(&plan));

    // Validity-aware ordering for the first-planned route over a 1 Mbps
    // channel: the volatile viableB is deferred so it is still fresh at
    // decision time (Least-Volatile-First, §IV-A).
    let (first_idx, first_route_items) = &plan.terms[0];
    let ordered = greedy_validity_shortcircuit(
        first_route_items,
        Channel::mbps1(),
        SimTime::ZERO,
        SimDuration::from_secs(60),
    );
    let order: Vec<&str> = ordered.iter().map(|i| i.label.as_str()).collect();
    println!("validity-feasible order for route {first_idx}: {order:?}");

    let analysis = analyze(
        &ordered,
        Channel::mbps1(),
        SimTime::ZERO,
        SimDuration::from_secs(60),
    );
    println!(
        "  finishes at {} (feasible: {})\n",
        analysis.finish,
        analysis.is_feasible()
    );

    // -- 4. Incremental evaluation with short-circuiting ----------------
    let mut world = Assignment::new();
    let now = SimTime::from_secs(5);
    println!("evidence arrives: viableA = false");
    world.set(
        Label::new("viableA"),
        Truth::False,
        now,
        SimDuration::from_secs(600),
    );
    println!("  resolution : {:?}", query.resolution(&world, now));
    println!(
        "  still worth fetching: {:?}",
        query
            .relevant_labels(&world, now)
            .iter()
            .map(Label::as_str)
            .collect::<Vec<_>>()
    );

    println!("evidence arrives: viableD, viableE, viableF = true");
    for l in ["viableD", "viableE", "viableF"] {
        world.set(Label::new(l), Truth::True, now, SimDuration::from_secs(600));
    }
    match query.resolution(&world, now) {
        Resolution::Viable(i) => println!("  DECIDED: course of action #{i} is viable"),
        other => println!("  unexpected: {other:?}"),
    }
    Ok(())
}

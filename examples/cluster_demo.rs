//! Cluster demo: the same scenario on both transport backends.
//!
//! Boots a loopback TCP cluster — one OS thread + real socket endpoint
//! per Athena node — runs a small query band against it, then replays the
//! identical scenario through the deterministic DES backend and checks
//! the two agree on every decision outcome and every attributed byte.
//! The live run's merged trace is written as JSONL, its per-node metrics
//! snapshots as a `{"nodes": [...]}` collection readable by
//! `dde-trace metrics` (CI uploads both as artifacts).
//!
//! Run with: `cargo run -p dde-examples --bin cluster_demo
//! [trace.jsonl [metrics.json]]`
//!
//! Exits nonzero if the backends disagree — this is the CI cluster-smoke
//! gate, not just a printout.

// CLI argument parsing reads the environment; the scenario and both
// backend runs are fixed (same policy as city_scale.rs).
#![allow(clippy::disallowed_methods)]
use dde_core::{QueryOutcome, QueryStatus, RunOptions, RunReport, Strategy};
use dde_logic::dnf::{Dnf, Term};
use dde_logic::label::Label;
use dde_logic::time::{SimDuration, SimTime};
use dde_net::{run_cluster_tcp_observed, ClusterConfig, DesTransport, NodeTelemetry};
use dde_netsim::{FaultSchedule, LinkSpec, NodeId, Topology};
use dde_obs::{JsonValue, JsonlSink, NullSink};
use dde_workload::{
    Catalog, DynamicsClass, ObjectSpec, QueryInstance, RoadGrid, Scenario, ScenarioConfig,
    WorldModel,
};
use std::io::BufWriter;

/// A 4-node star (leaf 0 — hub 1 — leaves 2, 3) with static ground truth
/// and spaced queries: timing-insensitive by construction, so byte totals
/// are a pure function of protocol decisions on either backend.
fn star_scenario() -> Scenario {
    let mut topology = Topology::new(4);
    topology.add_link(NodeId(0), NodeId(1), LinkSpec::mbps1());
    topology.add_link(NodeId(1), NodeId(2), LinkSpec::mbps1());
    topology.add_link(NodeId(1), NodeId(3), LinkSpec::mbps1());
    topology.rebuild_routes();

    let slow = SimDuration::from_secs(600);
    let mut world = WorldModel::new(5);
    world.register(Label::new("x"), DynamicsClass::Slow, slow, 1.0);
    world.register(Label::new("y"), DynamicsClass::Slow, slow, 1.0);

    let mut catalog = Catalog::new();
    catalog.add(ObjectSpec {
        name: "/city/seg/x/cam/a".parse().expect("valid name"),
        covers: vec![Label::new("x")],
        size: 250_000,
        source: NodeId(3),
        class: DynamicsClass::Slow,
        validity: slow,
    });
    catalog.add(ObjectSpec {
        name: "/city/seg/x/cam/wide".parse().expect("valid name"),
        covers: vec![Label::new("x"), Label::new("y")],
        size: 450_000,
        source: NodeId(3),
        class: DynamicsClass::Slow,
        validity: slow,
    });

    let query = |id: u64, origin: usize, labels: &[&str], at: u64| QueryInstance {
        id,
        origin: NodeId(origin),
        expr: Dnf::from_terms(vec![Term::all_of(labels.iter().copied())]),
        deadline: SimDuration::from_secs(60),
        issue_at: SimTime::from_secs(at),
    };
    let queries = vec![
        query(0, 0, &["x"], 5),
        query(1, 2, &["x", "y"], 20),
        query(2, 3, &["x"], 35),
    ];

    let grid = RoadGrid::new(2, 2);
    let node_sites = grid.intersections().take(4).collect();
    Scenario {
        config: ScenarioConfig::small(),
        grid,
        node_sites,
        topology,
        world,
        catalog,
        queries,
        faults: FaultSchedule::new(),
    }
}

fn outcome_str(status: &QueryStatus) -> String {
    match status {
        QueryStatus::Decided {
            outcome: QueryOutcome::Viable(i),
            ..
        } => format!("viable(route {i})"),
        QueryStatus::Decided {
            outcome: QueryOutcome::Infeasible,
            ..
        } => "infeasible".to_string(),
        QueryStatus::Missed => "missed".to_string(),
        QueryStatus::Pending => "pending".to_string(),
    }
}

/// Checks decision and byte agreement, printing each mismatch. Returns
/// how many checks failed.
fn compare(des: &RunReport, tcp: &RunReport) -> usize {
    let mut mismatches = 0;
    let mut check = |what: &str, ok: bool| {
        if !ok {
            eprintln!("MISMATCH: {what}");
            mismatches += 1;
        }
    };

    check("resolved counts", des.resolved == tcp.resolved);
    check("viable counts", des.viable == tcp.viable);
    check("infeasible counts", des.infeasible == tcp.infeasible);
    check("missed counts", des.missed == tcp.missed);
    check("total bytes", des.total_bytes == tcp.total_bytes);
    check("bytes by kind", des.bytes_by_kind == tcp.bytes_by_kind);

    println!("\n  per-query agreement:");
    println!(
        "  {:>5} {:>7} {:>20} {:>20} {:>12}",
        "query", "origin", "DES outcome", "TCP outcome", "bytes match"
    );
    let des_ledger = des.ledger.as_ref();
    let tcp_ledger = tcp.ledger.as_ref();
    for (d, t) in des.queries.iter().zip(&tcp.queries) {
        let outcomes_agree = match (&d.status, &t.status) {
            (QueryStatus::Decided { outcome: a, .. }, QueryStatus::Decided { outcome: b, .. }) => {
                a == b
            }
            (a, b) => std::mem::discriminant(a) == std::mem::discriminant(b),
        };
        let (db, tb) = (
            des_ledger
                .and_then(|l| l.queries.get(&d.id.0))
                .map(|q| q.bytes),
            tcp_ledger
                .and_then(|l| l.queries.get(&t.id.0))
                .map(|q| q.bytes),
        );
        println!(
            "  {:>5} {:>7} {:>20} {:>20} {:>12}",
            d.id.to_string(),
            d.origin.to_string(),
            outcome_str(&d.status),
            outcome_str(&t.status),
            if db == tb { "yes" } else { "NO" },
        );
        check("query outcome", outcomes_agree);
        check("query byte attribution", db == tb);
    }
    mismatches
}

/// Prints the per-node live-telemetry table: what each node's registry
/// counted, plus the coordinator prober's tallies.
fn print_telemetry(nodes: &[NodeTelemetry]) {
    println!("\n  per-node live telemetry:");
    println!(
        "  {:>4} {:>10} {:>10} {:>12} {:>10} {:>12} {:>8} {:>12} {:>12}",
        "node",
        "dispatches",
        "frames_out",
        "bytes_out",
        "frames_in",
        "bytes_in",
        "retries",
        "send p95 us",
        "probes ok/ko"
    );
    for t in nodes {
        let c = |name: &str| t.snapshot.counter(name).unwrap_or(0);
        let send_p95 = t
            .snapshot
            .histogram("host.send_wall_us")
            .and_then(|h| h.p95())
            .map_or(0, |d| d.as_micros());
        println!(
            "  {:>4} {:>10} {:>10} {:>12} {:>10} {:>12} {:>8} {:>12} {:>9}/{:<2}",
            t.node,
            c("host.dispatches"),
            c("tcp.frames_out"),
            c("tcp.bytes_out"),
            c("tcp.frames_in"),
            c("tcp.bytes_in"),
            c("tcp.connect_retries"),
            send_p95,
            t.probes_ok,
            t.probes_failed,
        );
    }
}

/// The metrics artifact: the per-node collection shape
/// `dde_obs::parse_snapshot_document` (and `dde-trace metrics`) accepts,
/// with the prober tallies alongside each snapshot.
fn metrics_document(nodes: &[NodeTelemetry]) -> JsonValue {
    let entries = nodes
        .iter()
        .map(|t| {
            JsonValue::Object(vec![
                ("node".into(), JsonValue::Int(t.node as i64)),
                (
                    "probes_ok".into(),
                    JsonValue::Int(t.probes_ok.min(i64::MAX as u64) as i64),
                ),
                (
                    "probes_failed".into(),
                    JsonValue::Int(t.probes_failed.min(i64::MAX as u64) as i64),
                ),
                ("metrics".into(), t.snapshot.to_json_value()),
            ])
        })
        .collect();
    JsonValue::Object(vec![("nodes".into(), JsonValue::Array(entries))])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace_path = std::env::args() // lint: allow(nondeterminism) — CLI trace-path selection only; the scenario itself is fixed
        .nth(1)
        .unwrap_or_else(|| "cluster_trace.jsonl".to_string());
    let metrics_path = std::env::args() // lint: allow(nondeterminism) — CLI artifact-path selection only
        .nth(2)
        .unwrap_or_else(|| "cluster_metrics.json".to_string());
    let scenario = star_scenario();
    let options = RunOptions::new(Strategy::Lvf);

    println!("== DES backend (deterministic baseline) ==");
    let des = DesTransport::new(options.clone()).run_observed(&scenario, Box::new(NullSink));
    println!(
        "  resolved {}/{} | total bytes {}",
        des.resolved, des.total_queries, des.total_bytes
    );

    println!(
        "\n== TCP backend (loopback cluster, {} real node threads) ==",
        scenario.topology.len()
    );
    let trace = JsonlSink::new(BufWriter::new(std::fs::File::create(&trace_path)?));
    let outcome =
        run_cluster_tcp_observed(&scenario, &options, &ClusterConfig::default(), Some(trace))?;
    let tcp = &outcome.report;
    println!(
        "  resolved {}/{} | total bytes {} | trace -> {}",
        tcp.resolved, tcp.total_queries, tcp.total_bytes, trace_path
    );

    print_telemetry(&outcome.nodes);
    let mut doc = metrics_document(&outcome.nodes).to_pretty_string();
    doc.push('\n');
    std::fs::write(&metrics_path, doc)?;
    println!("  metrics -> {metrics_path}");

    let mismatches = compare(&des, tcp);
    if mismatches > 0 {
        eprintln!("\ncluster demo FAILED: {mismatches} mismatches between backends");
        std::process::exit(1);
    }
    println!("\ncluster demo OK: backends agree on all outcomes and attributed bytes");
    Ok(())
}

//! Regenerates the message flow of the paper's **Fig. 1**: three nodes
//! A — B — C; the user issues a query at A over two data objects `u` and
//! `v`, both sourced at C.
//!
//! With prefetching enabled, C reacts to the query announcement by pushing
//! `u` and `v` back toward A in the background (the grey arrows of Fig. 1).
//! A's foreground fetch for the second object then meets the staged copy at
//! the forwarder B — a cache hit that never reaches the source.
//!
//! Run with: `cargo run -p dde-examples --bin fig1_walkthrough`

use dde_core::prelude::*;
use dde_logic::dnf::{Dnf, Term};
use dde_logic::label::Label;
use dde_logic::time::{SimDuration, SimTime};
use dde_netsim::topology::{LinkSpec, NodeId, Topology};
use dde_obs::{EventKind, MemorySink, SharedSink};
use dde_workload::catalog::{Catalog, ObjectSpec};
use dde_workload::grid::RoadGrid;
use dde_workload::scenario::{QueryInstance, Scenario, ScenarioConfig};
use dde_workload::world::{DynamicsClass, WorldModel};

fn build() -> Scenario {
    let mut config = ScenarioConfig::small();
    config.deadline = SimDuration::from_secs(60);
    config.prob_viable = 1.0;

    let topology = Topology::line(3, LinkSpec::mbps1());

    let mut world = WorldModel::new(1);
    let slow = SimDuration::from_secs(600);
    world.register(Label::new("cond_u"), DynamicsClass::Slow, slow, 1.0);
    world.register(Label::new("cond_v"), DynamicsClass::Slow, slow, 1.0);

    let mut catalog = Catalog::new();
    for (obj, label, kb) in [("u", "cond_u", 400u64), ("v", "cond_v", 500)] {
        catalog.add(ObjectSpec {
            name: format!("/fig1/{obj}").parse().expect("valid"),
            covers: vec![Label::new(label)],
            size: kb * 1000,
            source: NodeId(2), // node C
            class: DynamicsClass::Slow,
            validity: slow,
        });
    }

    let queries = vec![QueryInstance {
        id: 0,
        origin: NodeId(0), // node A
        expr: Dnf::from_terms(vec![Term::all_of(["cond_u", "cond_v"])]),
        deadline: config.deadline,
        issue_at: SimTime::ZERO,
    }];

    Scenario {
        grid: RoadGrid::new(2, 2), // unused placeholder geometry
        node_sites: Vec::new(),
        config,
        topology,
        world,
        catalog,
        queries,
        faults: dde_netsim::fault::FaultSchedule::new(),
    }
}

/// A transmission row of the walkthrough table, distilled from the
/// [`EventKind::Transmit`] records the observability sink captured.
struct Row {
    at: SimTime,
    from: NodeId,
    to: NodeId,
    kind: &'static str,
    bytes: u64,
    background: bool,
}

fn run(prefetch: bool) -> (RunReport, Vec<Row>) {
    let scenario = build();
    let mut options = RunOptions::new(Strategy::Lvf);
    options.prefetch = Some(prefetch);
    let sink = SharedSink::new(MemorySink::new());
    let handle = sink.clone();
    let report = run_scenario_observed(&scenario, options, Box::new(sink));
    let rows = handle.with(|mem| {
        mem.events()
            .iter()
            .filter_map(|rec| match &rec.kind {
                EventKind::Transmit {
                    from,
                    to,
                    msg,
                    bytes,
                    background,
                    ..
                } => Some(Row {
                    at: rec.at,
                    from: NodeId(*from as usize),
                    to: NodeId(*to as usize),
                    kind: msg,
                    bytes: *bytes,
                    background: *background,
                }),
                _ => None,
            })
            .take(64)
            .collect()
    });
    (report, rows)
}

fn node_name(n: NodeId) -> &'static str {
    match n.index() {
        0 => "A",
        1 => "B",
        _ => "C",
    }
}

fn main() {
    println!("== Fig. 1 walkthrough: query at A over objects u, v sourced at C ==\n");
    println!("topology: A(n0) --1Mbps-- B(n1) --1Mbps-- C(n2)\n");

    for prefetch in [false, true] {
        let (report, trace) = run(prefetch);
        println!(
            "--- message flow (prefetch {}) ---",
            if prefetch { "ON" } else { "off" }
        );
        for ev in &trace {
            println!(
                "  {:>9.3}s  {} -> {}  {:<8} {:>7} B{}",
                ev.at.as_secs_f64(),
                node_name(ev.from),
                node_name(ev.to),
                ev.kind,
                ev.bytes,
                if ev.background { "  (background)" } else { "" },
            );
        }
        println!(
            "prefetch {:>3}: decided={} cache_hits={} prefetch_pushes={} data_bytes={:.2} MB latency={}",
            if prefetch { "ON" } else { "off" },
            report.resolved,
            report.cache_hits,
            report.prefetch_pushes,
            *report.bytes_by_kind.get("data").unwrap_or(&0) as f64 / 1e6,
            report
                .mean_resolution_latency
                .map(|d| format!("{:.2} s", d.as_secs_f64()))
                .unwrap_or_else(|| "—".into()),
        );
    }

    println!(
        "\nWith prefetch ON, C starts pushing u and v toward A the moment the\n\
         query announcement arrives (grey background traffic in the figure).\n\
         A's fetch request is then answered from a staged copy mid-path —\n\
         the cache hit the figure highlights — instead of traveling all the\n\
         way to the source. The staging itself costs extra bytes (compare\n\
         the data columns): prefetching trades bandwidth for readiness,\n\
         which pays off when origins are busy or sources are far."
    );
}
